"""Serving benchmark: micro-batching + cache vs one-solve-per-request.

The PR 5 baseline (DESIGN.md §11). Drives the same Zipf-skewed
closed-loop workload through the :class:`~repro.serve.broker.QueryBroker`
in two shapes:

- **baseline** — ``max_batch_size=1``, cache disabled: every request is
  its own engine solve, the pre-serving behavior a caller hand-rolling
  ``solve_sssp`` per query would get;
- **batched-k** — a batch-size curve (k = 2..max) with the distance
  cache on: duplicate roots coalesce within a batch window and hot roots
  hit the cache, which is where a skewed workload's throughput comes
  from.

Reports throughput (qps) and tail latency (p50/p99) per variant plus the
cache-hit vs cold-solve latency split of the largest batched variant.

Standalone usage::

    python benchmarks/bench_serving.py --scale tiny --out bench_tiny.json
    python benchmarks/bench_serving.py --scale default --update BENCH_PR5.json
    python benchmarks/bench_serving.py --scale tiny --check

``--check`` is the CI ``serve-smoke`` gate; it is self-contained (no
committed baseline needed) and fails unless

1. the best batched variant's throughput beats the unbatched baseline's
   (micro-batching must pay for itself on a Zipf workload), and
2. the cache-hit p50 latency is measurably below the cold-solve p50
   (at most ``HIT_LATENCY_CEILING`` of it).

``--overhead-check`` is the CI ``chaos-smoke`` gate (DESIGN.md §12): it
runs the same workload with the resilience machinery armed (retries +
circuit breaker + cache checksums) but **no chaos**, interleaved
best-of-3 against the resilience-off shape, and fails unless

1. answers under the armed broker are bit-identical to offline
   ``solve_sssp`` calls (resilience must be invisible when nothing
   fails), and
2. armed throughput is within ``--max-overhead-pct`` (default 2%) of
   the resilience-off throughput.

``--obs-overhead-check`` is the CI ``obs-serve-smoke`` gate (DESIGN.md
§14): the same paired shape, but arming the request-scoped observability
layer (wide events + latency exemplars) instead of resilience — the
observed system must stay bit-identical, emit exactly one wide event per
offered request, and cost under ``--max-overhead-pct`` of throughput.
With ``--out`` it publishes the ``BENCH_PR9.json`` payload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    cached_rmat,
    default_machine,
    load_bench_json,
    print_table,
    write_bench_json,
)
from repro.serve import QueryBroker, WorkloadSpec, run_workload
from repro.serve.slo import percentile

#: CI gate (ISSUE 10): incremental repair must cost at most this fraction
#: of a fresh solve at <= 1% edge churn.
REPAIR_COST_CEILING = 0.30

#: Open-loop offered rates for the saturation sweep (qps).
RATE_SWEEP = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0)

SCALE_LABELS = {"tiny": 10, "default": 14}
REQUESTS = {"tiny": 120, "default": 400}

#: CI gate: batched throughput must exceed baseline throughput by this factor.
THROUGHPUT_FLOOR = 1.10
#: CI gate: cache-hit p50 latency must be at most this fraction of the
#: cold-solve p50.
HIT_LATENCY_CEILING = 0.5

BATCH_CURVE = (2, 4, 8, 16)


def _run_variant(
    graph,
    spec: WorkloadSpec,
    *,
    machine,
    batch_size: int,
    cache_bytes: int,
    workers: int,
) -> dict:
    """One broker configuration through the workload; returns a run row."""
    broker = QueryBroker(
        graph,
        algorithm="opt",
        delta=25,
        machine=machine,
        capacity=max(spec.num_requests, 256),
        max_batch_size=batch_size,
        flush_interval_s=0.002,
        num_workers=workers,
        cache_bytes=cache_bytes,
    )
    try:
        report = run_workload(broker, spec)
    finally:
        broker.shutdown(drain=True)
    row = {
        "batch_size": batch_size,
        "cache": cache_bytes > 0,
        "completed": report["completed"],
        "shed": report["shed"],
        "throughput_qps": report["throughput_qps"],
        "p50_s": report["p50_s"],
        "p99_s": report["p99_s"],
        "mean_batch_size": report["mean_batch_size"],
        "solves": report["solves"],
        "cache_hit_rate": report["cache_hit_rate"],
    }
    # Exact per-source percentiles for the hit-vs-cold latency split.
    for source in ("cache", "solve"):
        samples = broker.latency.samples(source)
        if samples:
            row[f"p50_{source}_s"] = percentile(samples, 50)
    return row


def run_suite(
    scale_label: str, *, num_ranks: int, workers: int, requests: int | None
) -> dict:
    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )
    cache_bytes = 64 << 20
    runs = []
    baseline = _run_variant(
        graph, spec, machine=machine, batch_size=1, cache_bytes=0,
        workers=workers,
    )
    baseline["variant"] = "baseline"
    runs.append(baseline)
    for k in BATCH_CURVE:
        row = _run_variant(
            graph, spec, machine=machine, batch_size=k,
            cache_bytes=cache_bytes, workers=workers,
        )
        row["variant"] = f"batched-{k}"
        row["speedup_vs_baseline"] = (
            row["throughput_qps"] / baseline["throughput_qps"]
        )
        runs.append(row)
    for run in runs:
        run["scale_label"] = scale_label
        run["scale"] = scale
    return {
        "schema": 1,
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "workload": {
            "arrival": spec.arrival,
            "num_requests": spec.num_requests,
            "concurrency": spec.concurrency,
            "zipf_s": spec.zipf_s,
            "root_universe": spec.root_universe,
            "seed": spec.seed,
        },
        "runs": runs,
    }


def check_gates(payload: dict) -> list[str]:
    """The self-contained CI gate (see module docstring)."""
    failures: list[str] = []
    runs = payload["runs"]
    baseline = next(r for r in runs if r["variant"] == "baseline")
    batched = [r for r in runs if r["variant"] != "baseline"]
    best = max(batched, key=lambda r: r["throughput_qps"])
    if best["throughput_qps"] < baseline["throughput_qps"] * THROUGHPUT_FLOOR:
        failures.append(
            f"batched throughput {best['throughput_qps']:.1f} qps "
            f"({best['variant']}) < {THROUGHPUT_FLOOR:.2f}x baseline "
            f"{baseline['throughput_qps']:.1f} qps"
        )
    split = [r for r in batched if "p50_cache_s" in r and "p50_solve_s" in r]
    if not split:
        failures.append("no batched variant observed both cache hits and solves")
    for run in split:
        ceiling = run["p50_solve_s"] * HIT_LATENCY_CEILING
        if run["p50_cache_s"] > ceiling:
            failures.append(
                f"{run['variant']}: cache-hit p50 {run['p50_cache_s'] * 1e3:.3f} ms "
                f"not measurably below cold-solve p50 "
                f"{run['p50_solve_s'] * 1e3:.3f} ms "
                f"(ceiling {HIT_LATENCY_CEILING:.0%})"
            )
    return failures


def _resilience_kwargs() -> dict:
    """The armed-but-quiet broker shape gated by ``--overhead-check``."""
    from repro.serve.breaker import BreakerConfig
    from repro.serve.retry import RetryPolicy

    return {
        "retry": RetryPolicy(max_attempts=3, backoff_base_s=0.001),
        "breaker": BreakerConfig(failure_threshold=3, recovery_time_s=0.25),
    }


def run_overhead_check(
    scale_label: str,
    *,
    num_ranks: int,
    workers: int,
    requests: int | None,
    max_overhead_pct: float,
    trials: int = 5,
) -> list[str]:
    """Resilience-off vs armed-no-chaos, paired over ``trials`` rounds.

    Throughput at tiny scale is noisy (sub-second runs), so the gate is
    computed from *paired* trials: each round runs both shapes back to
    back and contributes one on/off ratio; the median ratio is gated.
    Machine drift between rounds cancels out of each pair.
    """
    from repro.core.solver import solve_sssp
    from repro.graph.roots import choose_roots

    import numpy as np

    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )

    def one_trial(armed: bool) -> float:
        broker = QueryBroker(
            graph,
            algorithm="opt",
            delta=25,
            machine=machine,
            capacity=max(spec.num_requests, 256),
            max_batch_size=8,
            flush_interval_s=0.002,
            num_workers=workers,
            cache_bytes=64 << 20,
            **(_resilience_kwargs() if armed else {}),
        )
        try:
            report = run_workload(broker, spec)
            if armed:  # answers must be unchanged while armed
                for root in choose_roots(graph, 3, seed=7):
                    served = broker.query(int(root))
                    offline = solve_sssp(
                        graph, int(root), algorithm="opt", delta=25,
                        machine=machine,
                    )
                    assert np.array_equal(
                        served.distances, offline.distances
                    ), f"armed broker diverged from offline solve at {root}"
        finally:
            broker.shutdown(drain=True)
        return report["throughput_qps"]

    one_trial(False)  # untimed warmup: imports, graph + solver caches
    ratios, off_qps, on_qps = [], [], []
    for _ in range(trials):
        off = one_trial(False)
        on = one_trial(True)
        off_qps.append(off)
        on_qps.append(on)
        ratios.append(on / off)
    ratio = sorted(ratios)[len(ratios) // 2]
    print(
        f"overhead check ({scale_label}): resilience-off {max(off_qps):.1f} "
        f"qps, armed-no-chaos {max(on_qps):.1f} qps; paired median ratio "
        f"{ratio:.4f} ({(1 - ratio) * 100:+.2f}% overhead over "
        f"{trials} rounds)"
    )
    failures = []
    if ratio < 1.0 - max_overhead_pct / 100.0:
        failures.append(
            f"armed-no-chaos throughput is more than {max_overhead_pct:.1f}% "
            f"below resilience-off (paired median ratio {ratio:.4f}; "
            f"off {off_qps}, on {on_qps})"
        )
    return failures


def run_obs_overhead_check(
    scale_label: str,
    *,
    num_ranks: int,
    workers: int,
    requests: int | None,
    max_overhead_pct: float,
    trials: int = 5,
    out: str | None = None,
) -> list[str]:
    """Observability-off vs wide-events-armed, paired (DESIGN.md §14).

    The ISSUE 9 gate: arming request contexts + wide events + latency
    exemplars must stay **bit-identical** (the observed system is the
    same system) and within ``max_overhead_pct`` of the unobserved
    throughput, measured as the paired median ratio like the resilience
    gate above. Also asserts the structural wide-event invariant — one
    event per offered request — on every armed trial. With ``out``, the
    payload (ratios and per-trial qps) is written as the ``BENCH_PR9``
    baseline.
    """
    from repro.core.solver import solve_sssp
    from repro.graph.roots import choose_roots
    from repro.serve.events import WideEventLog

    import numpy as np

    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )

    def one_trial(armed: bool) -> float:
        events = WideEventLog() if armed else None
        broker = QueryBroker(
            graph,
            algorithm="opt",
            delta=25,
            machine=machine,
            capacity=max(spec.num_requests, 256),
            max_batch_size=8,
            flush_interval_s=0.002,
            num_workers=workers,
            cache_bytes=64 << 20,
            events=events,
        )
        try:
            report = run_workload(broker, spec)
            if armed:
                # structural invariant: one wide event per offered request
                assert events.emitted == report["offered"], (
                    f"{events.emitted} wide events for "
                    f"{report['offered']} offered requests"
                )
                # exemplars must have landed on the latency histogram
                assert any(
                    broker.registry.exemplars(
                        "serve_request_latency_seconds", source=source
                    )
                    for source in ("cache", "solve", "coalesced")
                ), "armed run produced no latency exemplars"
                # and the observed system must be the same system
                for root in choose_roots(graph, 3, seed=7):
                    served = broker.query(int(root))
                    offline = solve_sssp(
                        graph, int(root), algorithm="opt", delta=25,
                        machine=machine,
                    )
                    assert np.array_equal(
                        served.distances, offline.distances
                    ), f"observed broker diverged from offline solve at {root}"
        finally:
            broker.shutdown(drain=True)
        return report["throughput_qps"]

    one_trial(False)  # untimed warmup
    ratios, off_qps, on_qps = [], [], []
    for _ in range(trials):
        off = one_trial(False)
        on = one_trial(True)
        off_qps.append(off)
        on_qps.append(on)
        ratios.append(on / off)
    ratio = sorted(ratios)[len(ratios) // 2]
    print(
        f"observability overhead ({scale_label}): disabled {max(off_qps):.1f} "
        f"qps, events+exemplars armed {max(on_qps):.1f} qps; paired median "
        f"ratio {ratio:.4f} ({(1 - ratio) * 100:+.2f}% overhead over "
        f"{trials} rounds)"
    )
    if out:
        write_bench_json(out, {
            "schema": 1,
            "gate": "obs-overhead",
            "scale_label": scale_label,
            "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
            "trials": trials,
            "max_overhead_pct": max_overhead_pct,
            "disabled_qps": off_qps,
            "armed_qps": on_qps,
            "ratios": ratios,
            "paired_median_ratio": ratio,
        })
    failures = []
    if ratio < 1.0 - max_overhead_pct / 100.0:
        failures.append(
            f"events-armed throughput is more than {max_overhead_pct:.1f}% "
            f"below observability-off (paired median ratio {ratio:.4f}; "
            f"off {off_qps}, on {on_qps})"
        )
    return failures


def run_rate_sweep(
    scale_label: str,
    *,
    num_ranks: int,
    workers: int,
    requests: int | None,
    rates=RATE_SWEEP,
) -> dict:
    """Open-loop rate sweep past saturation (ISSUE 10 satellite a).

    Each rate drives the same Poisson stream shape; the broker's bounded
    admission queue converts overload into sheds, so the row sequence
    exposes the shed-fraction / latency knee rather than hiding it behind
    closed-loop self-pacing. Capacity is deliberately modest (64) and the
    cache is off — every request is a real solve, so the sweep is *meant*
    to cross the knee.
    """
    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    runs = []
    for rate in rates:
        spec = WorkloadSpec(
            num_requests=requests,
            arrival="open",
            rate_qps=float(rate),
            zipf_s=1.2,
            root_universe=32,
            seed=5,
        )
        broker = QueryBroker(
            graph,
            algorithm="opt",
            delta=25,
            machine=machine,
            capacity=64,
            max_batch_size=8,
            flush_interval_s=0.002,
            num_workers=workers,
            cache_bytes=0,
        )
        try:
            report = run_workload(broker, spec)
        finally:
            broker.shutdown(drain=True)
        offered = report["offered"]
        runs.append({
            "variant": f"rate-{rate:g}",
            "scale_label": scale_label,
            "scale": scale,
            "rate_qps": float(rate),
            "offered": offered,
            "completed": report["completed"],
            "shed": report["shed"],
            "shed_fraction": report["shed"] / offered if offered else 0.0,
            "throughput_qps": report["throughput_qps"],
            "p50_s": report["p50_s"],
            "p99_s": report["p99_s"],
            "cache_hit_rate": report["cache_hit_rate"],
        })
    return {
        "schema": 1,
        "gate": "rate-sweep",
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "runs": runs,
    }


def run_update_stream(
    scale_label: str,
    *,
    num_ranks: int,
    requests: int | None = None,
    churn_fraction: float = 0.01,
    updates: int = 4,
    hot_roots: int = 4,
    seed: int = 0,
) -> dict:
    """Repair-vs-fresh cost on a live update stream (ISSUE 10 headline).

    Per churn round: apply a seeded ``churn_fraction`` batch through a
    :class:`~repro.dynamic.versioner.GraphVersioner`, repair each hot
    root's previous distances, and fresh-solve the same roots on the new
    snapshot. Every repaired vector is asserted bit-identical to its
    fresh solve before any timing is reported, and the published ratio is
    total repair seconds over total fresh-solve seconds.
    """
    import time

    import numpy as np

    from repro.core.config import preset
    from repro.core.solver import solve_sssp
    from repro.dynamic.repair import repair_sssp
    from repro.dynamic.updates import random_update_batch
    from repro.dynamic.versioner import GraphVersioner
    from repro.graph.roots import choose_roots

    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    config = preset("opt", 25)
    versioner = GraphVersioner(
        graph, machine=machine, config=config, retention=updates + 1
    )
    roots = [int(r) for r in choose_roots(graph, hot_roots, seed=seed)]

    def fresh(g, root: int) -> tuple:
        t0 = time.perf_counter()
        result = solve_sssp(
            g, root, algorithm="opt", delta=25, machine=machine
        )
        return result.distances, time.perf_counter() - t0

    distances = {}
    for root in roots:
        distances[root], _ = fresh(graph, root)

    runs = []
    repair_total = fresh_total = 0.0
    fallbacks = 0
    for r in range(updates):
        batch = random_update_batch(
            versioner.current.graph,
            np.random.default_rng((seed, r)),
            churn_fraction=churn_fraction,
        )
        snap, _ = versioner.apply(batch)
        ctx = versioner.context_for(snap.snapshot_id)
        round_repair = round_fresh = 0.0
        round_dirty = 0
        for root in roots:
            result = repair_sssp(ctx, root, distances[root], snap.delta)
            fresh_d, fresh_s = fresh(snap.graph, root)
            round_fresh += fresh_s
            if result.fallback:
                fallbacks += 1
                distances[root] = fresh_d
                round_repair += fresh_s  # fallback pays the full solve
                continue
            round_repair += result.wall_time_s
            round_dirty += result.dirty
            assert np.array_equal(result.distances, fresh_d), (
                f"repair diverged from fresh solve: root {root}, "
                f"snapshot {snap.snapshot_id}"
            )
            distances[root] = result.distances
        repair_total += round_repair
        fresh_total += round_fresh
        runs.append({
            "variant": f"churn-round-{r}",
            "scale_label": scale_label,
            "scale": scale,
            "snapshot_id": snap.snapshot_id,
            "batch_size": batch.size,
            "churn_fraction": churn_fraction,
            "roots": len(roots),
            "dirty": round_dirty,
            "repair_s": round_repair,
            "fresh_s": round_fresh,
            "repair_cost_ratio": (
                round_repair / round_fresh if round_fresh else 0.0
            ),
        })
    return {
        "schema": 1,
        "gate": "update-stream",
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "churn": {
            "updates": updates,
            "churn_fraction": churn_fraction,
            "hot_roots": hot_roots,
            "seed": seed,
        },
        "repair_s": repair_total,
        "fresh_s": fresh_total,
        "repair_cost_ratio": (
            repair_total / fresh_total if fresh_total else 0.0
        ),
        "repair_fallbacks": fallbacks,
        "runs": runs,
    }


def check_update_stream_gate(payload: dict) -> list[str]:
    """Repaired-at-a-fraction-of-fresh, bit-identity already asserted."""
    failures = []
    ratio = payload["repair_cost_ratio"]
    if ratio >= REPAIR_COST_CEILING:
        failures.append(
            f"repair cost ratio {ratio:.3f} >= {REPAIR_COST_CEILING:.2f} "
            f"of fresh-solve cost at "
            f"{payload['churn']['churn_fraction']:.2%} churn"
        )
    return failures


def merge_section(path: str, section: str, payload: dict) -> None:
    """Write ``payload`` under its own section of a live-serving baseline
    JSON (``BENCH_PR10.json``), preserving the other sections."""
    base = load_bench_json(path) if Path(path).exists() else {}
    base["schema"] = 1
    base[section] = payload
    write_bench_json(path, base)


def merge_into_baseline(current: dict, baseline: dict) -> dict:
    """Replace rows matched by (scale_label, variant); keep the rest."""
    fresh = {(r["scale_label"], r["variant"]): r for r in current["runs"]}
    kept = [
        r
        for r in baseline.get("runs", [])
        if (r["scale_label"], r["variant"]) not in fresh
    ]
    merged = dict(baseline) if baseline else {}
    merged["schema"] = current["schema"]
    merged["machine"] = current["machine"]
    merged["workload"] = current["workload"]
    merged["runs"] = sorted(
        kept + list(fresh.values()),
        key=lambda r: (r["scale_label"], r["batch_size"]),
    )
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="default",
        help="'tiny' (2^10), 'default' (2^14) or an explicit log2 vertex count",
    )
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1,
                        help="broker worker threads (default 1)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the per-scale request count")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--update", help="merge results into this baseline JSON (create if absent)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless batching beats the unbatched baseline and "
             "cache hits are measurably faster than cold solves",
    )
    parser.add_argument(
        "--overhead-check",
        action="store_true",
        help="gate only: armed-no-chaos resilience must stay bit-identical "
             "and within --max-overhead-pct of resilience-off throughput",
    )
    parser.add_argument(
        "--obs-overhead-check",
        action="store_true",
        help="gate only: wide events + exemplars armed must stay "
             "bit-identical and within --max-overhead-pct of "
             "observability-off throughput (writes --out as the "
             "BENCH_PR9 payload when given)",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=2.0,
        help="allowed armed-no-chaos throughput regression (default 2%%)",
    )
    parser.add_argument(
        "--rate-sweep",
        action="store_true",
        help="open-loop offered-rate sweep past saturation: publishes the "
             "shed-fraction / latency knee (BENCH_PR10 'rate_sweep' "
             "section when --update names a baseline)",
    )
    parser.add_argument(
        "--update-stream",
        action="store_true",
        help="live-graph repair-vs-fresh cost stream: seeded churn rounds "
             "through a GraphVersioner, hot roots carried by incremental "
             "repair, bit-identity asserted (BENCH_PR10 'update_stream' "
             "section when --update names a baseline); with --check, "
             "fails unless repair costs < 30%% of fresh solves",
    )
    parser.add_argument(
        "--churn", type=float, default=0.01,
        help="edge-churn fraction per update round (default 1%%)",
    )
    parser.add_argument(
        "--updates", type=int, default=4,
        help="number of churn rounds in --update-stream (default 4)",
    )
    args = parser.parse_args(argv)

    if args.rate_sweep:
        payload = run_rate_sweep(
            args.scale, num_ranks=args.ranks, workers=args.workers,
            requests=args.requests,
        )
        print_table(
            [
                {
                    "rate qps": f"{r['rate_qps']:g}",
                    "done": r["completed"],
                    "shed": f"{r['shed_fraction']:.2%}",
                    "qps": f"{r['throughput_qps']:.1f}",
                    "p50 ms": f"{r['p50_s'] * 1e3:.3f}",
                    "p99 ms": f"{r['p99_s'] * 1e3:.3f}",
                }
                for r in payload["runs"]
            ],
            f"Open-loop rate sweep past saturation ({args.scale})",
        )
        if args.out:
            write_bench_json(args.out, payload)
        if args.update:
            merge_section(args.update, "rate_sweep", payload)
        return 0

    if args.update_stream:
        payload = run_update_stream(
            args.scale, num_ranks=args.ranks,
            churn_fraction=args.churn, updates=args.updates,
        )
        print_table(
            [
                {
                    "round": r["variant"],
                    "batch": r["batch_size"],
                    "dirty": r["dirty"],
                    "repair ms": f"{r['repair_s'] * 1e3:.1f}",
                    "fresh ms": f"{r['fresh_s'] * 1e3:.1f}",
                    "ratio": f"{r['repair_cost_ratio']:.3f}",
                }
                for r in payload["runs"]
            ],
            f"Incremental repair vs fresh solve ({args.scale}, "
            f"{args.churn:.2%} churn)",
        )
        print(
            f"total: repair {payload['repair_s'] * 1e3:.1f} ms vs fresh "
            f"{payload['fresh_s'] * 1e3:.1f} ms — ratio "
            f"{payload['repair_cost_ratio']:.3f} "
            f"({payload['repair_fallbacks']} fallbacks); answers "
            f"bit-identical on every snapshot"
        )
        if args.out:
            write_bench_json(args.out, payload)
        if args.update:
            merge_section(args.update, "update_stream", payload)
        if args.check:
            failures = check_update_stream_gate(payload)
            for failure in failures:
                print(f"REPAIR GATE: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(
                "repair gate: OK (bit-identical, repair < "
                f"{REPAIR_COST_CEILING:.0%} of fresh-solve cost)"
            )
        return 0

    if args.obs_overhead_check:
        failures = run_obs_overhead_check(
            args.scale, num_ranks=args.ranks, workers=args.workers,
            requests=args.requests, max_overhead_pct=args.max_overhead_pct,
            out=args.out,
        )
        for failure in failures:
            print(f"OBS OVERHEAD GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("obs overhead gate: OK (wide events armed, bit-identical, "
              "within budget)")
        return 0

    if args.overhead_check:
        failures = run_overhead_check(
            args.scale, num_ranks=args.ranks, workers=args.workers,
            requests=args.requests, max_overhead_pct=args.max_overhead_pct,
        )
        for failure in failures:
            print(f"OVERHEAD GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("overhead gate: OK (resilience armed, bit-identical, "
              "within budget)")
        return 0

    payload = run_suite(
        args.scale, num_ranks=args.ranks, workers=args.workers,
        requests=args.requests,
    )
    rows = []
    for run in payload["runs"]:
        row = {
            "variant": run["variant"],
            "qps": f"{run['throughput_qps']:.1f}",
            "p50 ms": f"{run['p50_s'] * 1e3:.3f}",
            "p99 ms": f"{run['p99_s'] * 1e3:.3f}",
            "hit rate": f"{run['cache_hit_rate']:.2f}",
            "solves": run["solves"],
            "mean batch": f"{run['mean_batch_size']:.2f}",
        }
        if "speedup_vs_baseline" in run:
            row["vs baseline"] = f"{run['speedup_vs_baseline']:.2f}x"
        if "p50_cache_s" in run and "p50_solve_s" in run:
            row["hit/cold p50"] = (
                f"{run['p50_cache_s'] * 1e3:.3f}/"
                f"{run['p50_solve_s'] * 1e3:.3f} ms"
            )
        rows.append(row)
    print_table(
        rows, f"Serving: batched + cached vs unbatched baseline ({args.scale})"
    )

    if args.out:
        write_bench_json(args.out, payload)
    if args.update:
        base = load_bench_json(args.update) if Path(args.update).exists() else {}
        write_bench_json(args.update, merge_into_baseline(payload, base))
    if args.check:
        failures = check_gates(payload)
        for failure in failures:
            print(f"SERVE GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("serving gate: OK (batching beats baseline; hits beat cold solves)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
