"""Per-rank mailboxes: the only channel between SPMD ranks.

A :class:`Mailbox` models one bulk-synchronous exchange round: during a
superstep every rank posts ``(dst_vertex, payload...)`` record batches
addressed by destination rank; at the superstep boundary :meth:`deliver`
moves them to the receivers (counting the traffic through the accounting
communicator) and hands each rank exactly the records addressed to it.
Nothing else crosses rank boundaries.

:class:`ReliableMailbox` layers a recovery protocol on top: every record of
a superstep carries an implicit per-channel ``(src_rank, dst_rank)``
sequence number, receivers acknowledge what arrived, and senders retransmit
the gaps with capped exponential backoff until the exchange is complete.
Duplicated deliveries are discarded by sequence-number dedup, so the layer
gives exactly-once semantics over an arbitrarily lossy/duplicating/
reordering wire.  The wire itself is the overridable :meth:`_transmit` /
:meth:`_release` hook pair — perfect by default (which makes this class
bit-identical to :class:`Mailbox` in results *and* accounting), perturbed
by :class:`repro.spmd.faults.FaultyMailbox` for fault injection.  All
recovery traffic is charged under the ``recovery`` phase kind so the
overhead of fault tolerance stays measurable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.runtime.comm import RECOVERY_PHASE, Communicator

__all__ = ["Mailbox", "ReliableMailbox"]


class Mailbox:
    """Bulk-synchronous record exchange between ``num_ranks`` ranks."""

    def __init__(self, num_ranks: int, comm: Communicator) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.comm = comm
        self.watchdog = None
        """Optional :class:`~repro.runtime.watchdog.Watchdog`; the reliable
        layer reports every recovery round to it so retry storms burn
        deadline budget even though the epoch counter stands still."""
        self._outbox: list[list[tuple[int, tuple[np.ndarray, ...]]]] = [
            [] for _ in range(num_ranks)
        ]

    def post(
        self,
        src_rank: int,
        dst_ranks: np.ndarray,
        *columns: np.ndarray,
    ) -> None:
        """Queue records from ``src_rank``; ``columns`` are parallel arrays
        (first column must be the destination vertex ids)."""
        if not 0 <= src_rank < self.num_ranks:
            raise IndexError(f"rank {src_rank} out of range")
        if not columns:
            raise ValueError("at least one record column required")
        dst_ranks = np.asarray(dst_ranks, dtype=np.int64)
        for col in columns:
            if np.asarray(col).shape != dst_ranks.shape:
                raise ValueError("record columns must align with dst_ranks")
        if dst_ranks.size == 0:
            return
        lo, hi = int(dst_ranks.min()), int(dst_ranks.max())
        if lo < 0 or hi >= self.num_ranks:
            bad = lo if lo < 0 else hi
            raise ValueError(
                f"destination rank {bad} out of range [0, {self.num_ranks})"
            )
        if lo == hi:
            # Single-destination batch: no segmentation sort needed.
            self._outbox[src_rank].append(
                (lo, tuple(np.asarray(c) for c in columns))
            )
            return
        order = np.argsort(dst_ranks, kind="stable")
        sorted_dst = dst_ranks[order]
        sorted_cols = [np.asarray(c)[order] for c in columns]
        bounds = np.nonzero(np.diff(sorted_dst))[0] + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [sorted_dst.size]))
        for s, e in zip(starts, ends):
            dst = int(sorted_dst[s])
            self._outbox[src_rank].append(
                (dst, tuple(c[s:e] for c in sorted_cols))
            )

    def _check_columns(self, num_columns: int) -> None:
        """Reject malformed supersteps *before* any traffic is charged, so a
        failed delivery never leaves the metrics half-updated."""
        for src in range(self.num_ranks):
            for _dst, cols in self._outbox[src]:
                if len(cols) != num_columns:
                    raise ValueError(
                        f"posted {len(cols)} columns, deliver expects "
                        f"{num_columns}"
                    )

    def deliver(
        self,
        record_bytes: int,
        *,
        phase_kind: str = "other",
        num_columns: int = 2,
    ) -> list[tuple[np.ndarray, ...]]:
        """Close the superstep: account the traffic and return, per receiving
        rank, the concatenated record columns addressed to it.

        The hot path is batched by (src, dst) *lane*: traffic is accounted
        from per-lane record counts (no per-record src/dst rank columns are
        ever materialised — historically an O(P²) ``np.full`` allocation
        pattern per superstep), empty lanes are skipped entirely, and an
        idle superstep allocates no per-lane arrays at all.
        """
        p = self.num_ranks
        self._check_columns(num_columns)
        tr = self.comm.metrics.tracer
        span = (
            tr.begin("superstep", cat="superstep", phase=phase_kind)
            if tr is not None
            else None
        )
        lane_src: list[int] = []
        lane_dst: list[int] = []
        lane_cnt: list[int] = []
        inbox: list[list[tuple[np.ndarray, ...]]] = [[] for _ in range(p)]
        for src in range(p):
            for dst, cols in self._outbox[src]:
                count = cols[0].size
                if count == 0:
                    continue
                lane_src.append(src)
                lane_dst.append(dst)
                lane_cnt.append(count)
                inbox[dst].append(cols)
        self._outbox = [[] for _ in range(p)]
        self.comm.exchange_by_rank_counts(
            np.asarray(lane_src, dtype=np.int64),
            np.asarray(lane_dst, dtype=np.int64),
            np.asarray(lane_cnt, dtype=np.int64),
            record_bytes,
            phase_kind=phase_kind,
        )
        out: list[tuple[np.ndarray, ...]] = []
        for dst in range(p):
            batches = inbox[dst]
            if not batches:
                out.append(
                    tuple(np.empty(0, dtype=np.int64) for _ in range(num_columns))
                )
            elif len(batches) == 1:
                # Single-lane receiver: hand the posted columns through
                # without a concatenate copy.
                out.append(batches[0])
            else:
                out.append(
                    tuple(
                        np.concatenate([batch[i] for batch in batches])
                        for i in range(num_columns)
                    )
                )
        if tr is not None:
            tr.end(span, lanes=len(lane_cnt), records=int(sum(lane_cnt)))
        return out

    def allreduce_sum(
        self, values: list[int | float], *, phase_kind: str = "bucket"
    ) -> int | float:
        """Sum a per-rank scalar (counted as one allreduce)."""
        if len(values) != self.num_ranks:
            raise ValueError("need one value per rank")
        self.comm.allreduce(1, phase_kind=phase_kind)
        return sum(values)

    def allreduce_min(
        self, values: list[int | float], *, phase_kind: str = "bucket"
    ) -> int | float:
        """Minimum of a per-rank scalar (counted as one allreduce)."""
        if len(values) != self.num_ranks:
            raise ValueError("need one value per rank")
        self.comm.allreduce(1, phase_kind=phase_kind)
        return min(values)


class ReliableMailbox(Mailbox):
    """Mailbox with a sequence/ack/retry reliable-transport layer.

    Every :meth:`deliver` flattens the superstep's outbox into one record
    stream; a record's index in that stream is its global id, and its rank
    within its ``(src_rank, dst_rank)`` channel is its sequence number.  The
    protocol then runs:

    1. **First attempt** — the whole stream is handed to the wire
       (:meth:`_transmit`) and charged exactly like a plain
       :class:`Mailbox` exchange, under the algorithm's own phase kind.
    2. **Ack rounds** — while any record is unacknowledged (or the wire
       still holds delayed records), an extra *recovery superstep* runs:
       one small allreduce models the ack exchange, delayed records due
       this round are released (:meth:`_release`), and channels with gaps
       retransmit their missing sequence numbers.  Retries follow capped
       exponential backoff (``min(2^attempt, backoff_cap)`` rounds between
       attempts); after ``max_attempts`` attempts a channel's records are
       delivered out-of-band (the wire "heals"), which bounds recovery time
       under arbitrarily adversarial fault plans.
    3. **Dedup** — receivers drop any sequence number they have already
       absorbed, so duplicated or delayed-then-retransmitted records are
       exact no-ops.

    Retransmissions and ack rounds are charged under the ``recovery`` phase
    kind (see :meth:`repro.runtime.comm.Communicator.retransmit`); on a
    perfect wire no recovery round ever runs and the class is bit-identical
    to :class:`Mailbox` in both results and accounting.

    ``on_restart`` is the engine-side crash hook: when the wire reports a
    rank crash for the current superstep (:meth:`_ranks_crashing`), the
    callback is invoked with the rank id *before* any record of the
    superstep is handed to the engine, so the engine can roll the rank back
    to its last checkpoint first.
    """

    def __init__(
        self,
        num_ranks: int,
        comm: Communicator,
        *,
        max_attempts: int = 6,
        backoff_cap: int = 4,
        max_recovery_rounds: int = 10_000,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_cap < 1:
            raise ValueError("backoff_cap must be >= 1")
        super().__init__(num_ranks, comm)
        self.max_attempts = max_attempts
        self.backoff_cap = backoff_cap
        self.max_recovery_rounds = max_recovery_rounds
        self.on_restart: Callable[[int], None] | None = None
        self._superstep = 0
        self._fl_src: np.ndarray | None = None
        self._fl_dst: np.ndarray | None = None

    @property
    def superstep(self) -> int:
        """Supersteps delivered so far (persisted in durable checkpoints)."""
        return self._superstep

    def fast_forward(self, superstep: int) -> None:
        """Advance the superstep counter to resume a checkpointed solve.

        Fault-plan events are pinned to absolute superstep numbers; without
        the fast-forward a resumed run would replay them from zero and fire
        already-survived faults twice."""
        if superstep < 0:
            raise ValueError("superstep must be >= 0")
        self._superstep = max(self._superstep, superstep)

    # ------------------------------------------------------------------
    # Wire hooks (perfect by default; FaultyMailbox overrides them)
    # ------------------------------------------------------------------
    def _ranks_crashing(self, superstep: int) -> tuple[int, ...]:
        """Ranks that crash (lose state) at this superstep."""
        return ()

    def _pre_send_mask(
        self, superstep: int, src_ranks: np.ndarray
    ) -> np.ndarray | None:
        """Records that actually make it onto the wire (None = all)."""
        return None

    def _transmit(
        self,
        superstep: int,
        round_: int,
        gids: np.ndarray,
        protect: np.ndarray | None = None,
    ) -> np.ndarray:
        """Push record ids through the wire; returns the ids arriving now.

        ``protect`` marks records whose channel exhausted ``max_attempts``:
        they must be delivered unconditionally.
        """
        return gids

    def _wire_pending(self) -> bool:
        """Whether the wire still holds delayed records."""
        return False

    def _release(self, round_: int) -> np.ndarray:
        """Delayed record ids whose release round has come."""
        return np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def deliver(
        self,
        record_bytes: int,
        *,
        phase_kind: str = "other",
        num_columns: int = 2,
    ) -> list[tuple[np.ndarray, ...]]:
        """Reliable superstep close: retries until every surviving record
        of the exchange has been delivered exactly once."""
        p = self.num_ranks
        superstep = self._superstep
        self._superstep += 1
        self._check_columns(num_columns)
        rec = self.comm.metrics.recovery
        tr = self.comm.metrics.tracer
        span = (
            tr.begin(
                "superstep", cat="superstep", phase=phase_kind,
                superstep=superstep,
            )
            if tr is not None
            else None
        )

        # Crash events fire first so the engine restores the rank's state
        # before any record of this superstep is applied to it.
        for rank in self._ranks_crashing(superstep):
            rec.note_fault(superstep, 0, "crash", 1)
            if tr is not None:
                tr.instant("crash", rank=int(rank), superstep=superstep)
            if self.on_restart is not None:
                self.on_restart(rank)

        # Flatten the outbox into one record stream (same order as the
        # plain Mailbox concatenates batches: src ascending, per-src post
        # insertion order — fault-plan events key off stream positions, so
        # this order is load-bearing). Lane endpoints expand via a single
        # ``np.repeat`` over per-batch values instead of one ``np.full``
        # pair per batch; empty batches are dropped up front.
        batch_src: list[int] = []
        batch_dst: list[int] = []
        batch_cnt: list[int] = []
        col_parts: list[list[np.ndarray]] = [[] for _ in range(num_columns)]
        for src in range(p):
            for dst, cols in self._outbox[src]:
                count = cols[0].size
                if count == 0:
                    continue
                batch_src.append(src)
                batch_dst.append(dst)
                batch_cnt.append(count)
                for i in range(num_columns):
                    col_parts[i].append(cols[i])
        self._outbox = [[] for _ in range(p)]
        if batch_cnt:
            cnt_arr = np.asarray(batch_cnt, dtype=np.int64)
            src_arr = np.repeat(np.asarray(batch_src, dtype=np.int64), cnt_arr)
            dst_arr = np.repeat(np.asarray(batch_dst, dtype=np.int64), cnt_arr)
            cols = tuple(np.concatenate(c) for c in col_parts)
        else:
            src_arr = np.empty(0, dtype=np.int64)
            dst_arr = np.empty(0, dtype=np.int64)
            cols = tuple(np.empty(0, dtype=np.int64) for _ in range(num_columns))

        # A crashed sender loses the records it had not sent yet.
        mask = self._pre_send_mask(superstep, src_arr)
        if mask is not None and not mask.all():
            src_arr = src_arr[mask]
            dst_arr = dst_arr[mask]
            cols = tuple(c[mask] for c in cols)

        # First attempt: charged as the algorithm's own traffic.
        self.comm.exchange_by_rank(
            src_arr, dst_arr, record_bytes, phase_kind=phase_kind
        )
        n = src_arr.size
        self._fl_src, self._fl_dst = src_arr, dst_arr
        seen = np.zeros(n, dtype=bool)
        arrival: list[np.ndarray] = []

        def absorb(gids: np.ndarray) -> None:
            # Sequence-number dedup: keep the first arrival of each record,
            # in wire order; later copies are exact no-ops.
            if gids.size == 0:
                return
            uniq, first_pos = np.unique(gids, return_index=True)
            fresh_pos = first_pos[~seen[uniq]]
            if fresh_pos.size == 0:
                return
            fresh_pos.sort()
            fresh = gids[fresh_pos]
            seen[fresh] = True
            arrival.append(fresh)

        absorb(self._transmit(superstep, 0, np.arange(n, dtype=np.int64)))

        # Ack/retry rounds with capped exponential backoff.
        channel = src_arr * p + dst_arr
        attempt = np.zeros(p * p, dtype=np.int64)
        next_retry = np.ones(p * p, dtype=np.int64)
        round_ = 1
        while not seen.all() or self._wire_pending():
            if round_ > self.max_recovery_rounds:
                raise RuntimeError(
                    "reliable delivery did not converge within "
                    f"{self.max_recovery_rounds} recovery rounds"
                )
            rec.recovery_supersteps += 1
            if self.watchdog is not None:
                self.watchdog.note_recovery_round()
            self.comm.allreduce(1, phase_kind=RECOVERY_PHASE)
            absorb(self._release(round_))
            missing = np.nonzero(~seen)[0]
            if missing.size:
                due = next_retry[channel[missing]] <= round_
                resend = missing[due]
                if resend.size:
                    self.comm.retransmit(
                        src_arr[resend], dst_arr[resend], record_bytes
                    )
                    ch_ids = np.unique(channel[resend])
                    attempt[ch_ids] += 1
                    next_retry[ch_ids] = round_ + np.minimum(
                        1 << np.minimum(attempt[ch_ids], 30), self.backoff_cap
                    )
                    protect = attempt[channel[resend]] >= self.max_attempts
                    absorb(
                        self._transmit(superstep, round_, resend, protect=protect)
                    )
            round_ += 1
        self._fl_src = self._fl_dst = None

        got = np.concatenate(arrival) if arrival else np.empty(0, dtype=np.int64)
        out: list[tuple[np.ndarray, ...]] = []
        for dst in range(p):
            sel = got[dst_arr[got] == dst]
            if sel.size:
                out.append(tuple(c[sel] for c in cols))
            else:
                out.append(
                    tuple(np.empty(0, dtype=np.int64) for _ in range(num_columns))
                )
        if tr is not None:
            tr.end(span, records=int(n), recovery_rounds=round_ - 1)
        return out
