"""Unit tests for the alternative weight distributions."""

import numpy as np
import pytest

from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.graph.weights import (
    bimodal_weights,
    constant_weights,
    exponential_weights,
    reweight,
    uniform_weights,
)


class TestExponential:
    def test_range(self):
        w = exponential_weights(10_000, max_weight=255, seed=0)
        assert w.min() >= 1 and w.max() <= 255

    def test_skews_light(self):
        w = exponential_weights(50_000, max_weight=255, seed=1)
        assert np.median(w) < 255 / 4  # far below the uniform median

    def test_mean_parameter(self):
        small = exponential_weights(50_000, mean=5.0, seed=2).mean()
        large = exponential_weights(50_000, mean=60.0, seed=2).mean()
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_weights(10, max_weight=0)
        with pytest.raises(ValueError):
            exponential_weights(-1)


class TestBimodal:
    def test_two_point_support(self):
        w = bimodal_weights(10_000, max_weight=255, seed=0)
        assert set(np.unique(w).tolist()) == {1, 255}

    def test_light_fraction(self):
        w = bimodal_weights(100_000, light_fraction=0.8, seed=1)
        assert (w == 1).mean() == pytest.approx(0.8, abs=0.01)

    def test_all_light(self):
        w = bimodal_weights(100, light_fraction=1.0)
        assert np.all(w == 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bimodal_weights(10, light_fraction=1.5)


class TestConstant:
    def test_constant(self):
        w = constant_weights(10, weight=7)
        assert np.all(w == 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_weights(10, weight=0)


class TestReweight:
    def test_preserves_topology(self, rmat1_small):
        g2 = reweight(rmat1_small, bimodal_weights, seed=3)
        assert g2.num_vertices == rmat1_small.num_vertices
        assert g2.num_undirected_edges == rmat1_small.num_undirected_edges
        assert np.array_equal(np.sort(g2.adj), np.sort(rmat1_small.adj))

    def test_weights_symmetric(self, rmat1_small):
        g2 = reweight(rmat1_small, exponential_weights, seed=4)
        rev = g2.reverse()
        for u in range(0, g2.num_vertices, 71):
            a = sorted(zip(g2.neighbors(u).tolist(), g2.neighbor_weights(u).tolist()))
            b = sorted(zip(rev.neighbors(u).tolist(), rev.neighbor_weights(u).tolist()))
            assert a == b

    @pytest.mark.parametrize(
        "gen", [uniform_weights, exponential_weights, bimodal_weights]
    )
    def test_solver_correct_under_any_distribution(self, rmat1_small, gen):
        g2 = reweight(rmat1_small, gen, seed=5)
        res = solve_sssp(g2, 3, algorithm="opt", delta=25,
                         num_ranks=4, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(g2, 3))

    def test_constant_weights_bfs_like(self, rmat1_small):
        from repro.bfs import run_bfs

        g2 = reweight(rmat1_small, lambda n, seed=0: constant_weights(n, 1))
        res = solve_sssp(g2, 3, algorithm="delta", delta=1,
                         num_ranks=2, threads_per_rank=2)
        bfs = run_bfs(rmat1_small, 3, num_ranks=2, threads_per_rank=2)
        hop = np.where(bfs.levels >= 0, bfs.levels, res.distances.max() + 1)
        reached = bfs.levels >= 0
        assert np.array_equal(res.distances[reached], hop[reached])
