"""Direction-optimizing BFS (Beamer, Asanović, Patterson; SC'12).

Level-synchronous BFS with two step implementations:

**top-down** — every frontier vertex sends its id along all incident arcs;
unvisited receivers join the next frontier. Work and traffic scale with the
edges *leaving the frontier*.

**bottom-up** — every unvisited vertex scans its own (incoming) arcs for a
frontier neighbour and stops at the first hit. Work scales with the edges
examined by the *unvisited* side — far less than top-down when the frontier
is a large fraction of the graph — at the cost of broadcasting the frontier
bitmap (an allgather of n bits per level).

Beamer's heuristic switches top-down -> bottom-up when the frontier's edge
count exceeds ``1/alpha`` of the unexplored edge count, and back when the
frontier shrinks below ``n / beta`` vertices (alpha = 15, beta = 24 in the
original paper). This mirrors the SSSP pruning push/pull decision — which
the paper credits to exactly this technique.

All compute and traffic is declared to the same accounting runtime as the
SSSP engine, so BFS and SSSP TEPS are directly comparable (the paper's
Fig. 1 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolverConfig
from repro.core.context import ExecutionContext, make_context
from repro.graph.csr import CSRGraph
from repro.runtime.comm import RELAX_RECORD_BYTES
from repro.runtime.costmodel import CostBreakdown, evaluate_cost, simulated_gteps
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics
from repro.util.ranges import concat_ranges

__all__ = ["BfsResult", "run_bfs", "DEFAULT_ALPHA", "DEFAULT_BETA"]

DEFAULT_ALPHA = 15
"""Beamer's top-down -> bottom-up switching parameter."""

DEFAULT_BETA = 24
"""Beamer's bottom-up -> top-down switching parameter."""

UNVISITED = np.int64(-1)


@dataclass
class BfsResult:
    """Outcome of one BFS run on the simulated machine."""

    levels: np.ndarray
    """Hop distance per vertex (-1 = unreached)."""
    parent: np.ndarray
    """BFS-tree parent per vertex (-1 = root or unreached)."""
    metrics: Metrics
    cost: CostBreakdown
    gteps: float
    direction_per_level: list[str]
    root: int

    @property
    def num_reached(self) -> int:
        return int((self.levels >= 0).sum())

    @property
    def num_levels(self) -> int:
        return len(self.direction_per_level)


def _top_down_step(
    ctx: ExecutionContext,
    frontier: np.ndarray,
    levels: np.ndarray,
    parent: np.ndarray,
    level: int,
) -> np.ndarray:
    """Expand the frontier along outgoing arcs; returns the next frontier."""
    graph = ctx.graph
    indptr, adj = graph.indptr, graph.adj
    arcs, owner_idx = concat_ranges(indptr[frontier], indptr[frontier + 1])
    src = frontier[owner_idx]
    dst = adj[arcs]
    ctx.charge(
        ComputeKind.BF_RELAX,
        frontier,
        (indptr[frontier + 1] - indptr[frontier]).astype(np.float64),
        phase_kind="bf",
    )
    ctx.comm.exchange_by_vertex(src, dst, RELAX_RECORD_BYTES, phase_kind="bf")
    ctx.charge(ComputeKind.BF_RELAX, dst, None, phase_kind="bf",
               count_as_relax=True)
    fresh_mask = levels[dst] == UNVISITED
    fresh_dst = dst[fresh_mask]
    fresh_src = src[fresh_mask]
    # first writer wins for the parent; duplicates collapse via unique
    uniq, first = np.unique(fresh_dst, return_index=True)
    levels[uniq] = level
    parent[uniq] = fresh_src[first]
    return uniq


def _bottom_up_step(
    ctx: ExecutionContext,
    frontier_mask: np.ndarray,
    levels: np.ndarray,
    parent: np.ndarray,
    level: int,
) -> np.ndarray:
    """Unvisited vertices search their in-arcs for a frontier neighbour.

    Returns the next frontier. Each unvisited vertex stops at its first
    frontier neighbour (the early exit that makes bottom-up cheap); the
    charged work is exactly the arcs examined. The frontier bitmap
    broadcast is accounted as an allgather-style exchange of n/8 bytes
    per rank pair boundary (modelled as one exchange of the bitmap bytes).
    """
    graph = ctx.in_graph
    indptr, adj = graph.indptr, graph.adj
    n = levels.size
    unvisited = np.nonzero(levels == UNVISITED)[0].astype(np.int64)
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64)

    # Frontier bitmap allgather: each rank contributes its n/P-bit chunk
    # and assembles the full n-bit bitmap. A ring/recursive-doubling
    # allgather moves ~(P-1)/P * n bits in and out per rank — ~2 * n/8
    # bytes — with P-1 (aggregated) messages.
    p = ctx.machine.num_ranks
    if p > 1:
        bitmap_bytes = np.full(p, 2 * (n // 8 + 1), dtype=np.int64)
        ctx.metrics.add_exchange(
            np.full(p, p - 1, dtype=np.int64),
            bitmap_bytes,
            phase_kind="bf",
        )

    arcs, owner_idx = concat_ranges(indptr[unvisited], indptr[unvisited + 1])
    hits = frontier_mask[adj[arcs]]
    # Per-unvisited-vertex: index of the first frontier neighbour, and the
    # number of arcs examined (hit position + 1, or the full degree).
    degs = (indptr[unvisited + 1] - indptr[unvisited]).astype(np.int64)
    # positions within each segment
    seg_starts = np.concatenate(([0], np.cumsum(degs)[:-1]))
    pos_in_seg = np.arange(arcs.size, dtype=np.int64) - seg_starts[owner_idx]
    # first hit per segment: minimum hit position (degs where none)
    first_hit = np.full(unvisited.size, np.iinfo(np.int64).max, dtype=np.int64)
    if hits.any():
        np.minimum.at(first_hit, owner_idx[hits], pos_in_seg[hits])
    found = first_hit < np.iinfo(np.int64).max
    examined = np.where(found, first_hit + 1, degs).astype(np.float64)
    ctx.charge(
        ComputeKind.BF_RELAX, unvisited, examined, phase_kind="bf",
        count_as_relax=True,
    )

    joiners = unvisited[found]
    if joiners.size:
        parent_arc = indptr[joiners] + first_hit[found]
        parent[joiners] = adj[parent_arc]
        levels[joiners] = level
    return joiners


def run_bfs(
    graph: CSRGraph,
    root: int,
    *,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 16,
    alpha: int = DEFAULT_ALPHA,
    beta: int = DEFAULT_BETA,
    direction: str = "auto",
    intra_lb: bool = False,
) -> BfsResult:
    """Breadth-first search from ``root`` on the simulated machine.

    ``direction``: ``"auto"`` (Beamer's heuristic), ``"top-down"`` or
    ``"bottom-up"`` to force one step kind throughout.
    """
    if direction not in ("auto", "top-down", "bottom-up"):
        raise ValueError(f"unknown direction {direction!r}")
    if machine is None:
        machine = MachineConfig(num_ranks=num_ranks, threads_per_rank=threads_per_rank)
    # BFS ignores weights; Δ is irrelevant but the context requires one.
    ctx = make_context(graph, machine, SolverConfig(delta=1, intra_lb=intra_lb))
    g = ctx.graph
    n = g.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")

    levels = np.full(n, UNVISITED, dtype=np.int64)
    parent = np.full(n, UNVISITED, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    frontier_mask = np.zeros(n, dtype=bool)
    directions: list[str] = []
    degrees = g.degrees
    total_arcs = int(g.num_arcs)
    explored_arcs = int(degrees[root])
    mode = "top-down" if direction != "bottom-up" else "bottom-up"
    level = 0

    while True:
        ctx.comm.allreduce(1, phase_kind="bucket")  # level-synchronous barrier
        if frontier.size == 0:
            break
        level += 1
        if direction == "auto":
            frontier_edges = int(degrees[frontier].sum())
            remaining_edges = max(total_arcs - explored_arcs, 1)
            if mode == "top-down" and frontier_edges * alpha > remaining_edges:
                mode = "bottom-up"
            elif mode == "bottom-up" and frontier.size * beta < n:
                mode = "top-down"
        else:
            mode = direction
        directions.append(mode)

        if mode == "top-down":
            next_frontier = _top_down_step(ctx, frontier, levels, parent, level)
        else:
            frontier_mask[:] = False
            frontier_mask[frontier] = True
            next_frontier = _bottom_up_step(
                ctx, frontier_mask, levels, parent, level
            )
        explored_arcs += int(degrees[next_frontier].sum())
        frontier = next_frontier

    parent[root] = UNVISITED
    cost = evaluate_cost(ctx.metrics, machine)
    gteps = simulated_gteps(graph.num_undirected_edges, ctx.metrics, machine)
    return BfsResult(
        levels=levels,
        parent=parent,
        metrics=ctx.metrics,
        cost=cost,
        gteps=gteps,
        direction_per_level=directions,
        root=root,
    )
