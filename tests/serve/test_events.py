"""Unit tests for request contexts, wide events, and the event log."""

import json
import threading

import pytest

from repro.obs.request import RequestContext, request_id
from repro.serve.events import (
    WideEventLog,
    canonical_event,
    canonical_text,
    main as events_main,
    read_events,
)


def _ctx(seq: int = 7, root: int = 3) -> RequestContext:
    return RequestContext(request_id(seq), root, submitted_at=1.5)


class TestRequestContext:
    def test_request_id_format(self):
        assert request_id(0) == "req-000000"
        assert request_id(42) == "req-000042"
        assert request_id(1_000_000) == "req-1000000"

    def test_notes_accumulate(self):
        ctx = _ctx()
        ctx.note_cache("stale_hit")
        ctx.note_dequeue(0.01)
        ctx.note_batch(2)
        ctx.note_attempt(1, "primary", "error", "transient_error")
        ctx.note_attempt(2, "primary", None, "ok")
        ctx.note_degraded("stale_cache", ("solve",))
        assert ctx.cache_tier == "stale_hit"
        assert ctx.queue_waits_s == [0.01]
        assert ctx.batches == [2]
        assert [a["outcome"] for a in ctx.attempts] == ["transient_error", "ok"]
        assert ctx.degraded_tier == "stale_cache"
        assert ctx.breaker_open == ("solve",)

    def test_negative_queue_wait_clamped(self):
        ctx = _ctx()
        ctx.note_dequeue(-1e-9)
        assert ctx.queue_waits_s == [0.0]

    def test_wide_event_shape(self):
        ctx = _ctx()
        ctx.note_attempt(1, "primary", None, "ok")
        ev = ctx.wide_event(
            outcome="ok", source="solve", latency_s=0.25, attempts_total=1
        )
        assert ev["schema"] == 1
        assert ev["request_id"] == "req-000007"
        assert ev["root"] == 3
        assert ev["admission"] == "admitted"
        assert ev["outcome"] == "ok" and ev["source"] == "solve"
        assert ev["timing"]["submitted_at"] == 1.5
        assert ev["timing"]["latency_s"] == 0.25
        # the event must be a self-contained JSON document
        json.dumps(ev)

    def test_shed_event(self):
        ctx = _ctx()
        ctx.note_shed()
        ev = ctx.wide_event(
            outcome="shed", source=None, latency_s=0.0, attempts_total=0
        )
        assert ev["admission"] == "shed"
        assert ev["source"] is None


class TestCanonicalForm:
    def test_timing_stripped(self):
        ev = _ctx().wide_event(
            outcome="ok", source="cache", latency_s=0.1, attempts_total=0
        )
        canon = canonical_event(ev)
        assert "timing" not in canon
        assert canon["request_id"] == ev["request_id"]

    def test_sorted_by_request_id_regardless_of_completion_order(self):
        events = []
        for seq in (2, 0, 1):
            ctx = RequestContext(request_id(seq), root=seq)
            events.append(
                ctx.wide_event(
                    outcome="ok", source="solve",
                    latency_s=float(seq), attempts_total=1,
                )
            )
        text = canonical_text(events)
        ids = [json.loads(line)["request_id"] for line in text.splitlines()]
        assert ids == ["req-000000", "req-000001", "req-000002"]
        # and identical regardless of input order (the replay contract)
        assert canonical_text(reversed(events)) == text

    def test_timing_jitter_does_not_change_canonical_text(self):
        def run(latency):
            ctx = _ctx()
            return ctx.wide_event(
                outcome="ok", source="solve",
                latency_s=latency, attempts_total=1,
            )

        assert canonical_text([run(0.1)]) == canonical_text([run(99.0)])


class TestWideEventLog:
    def test_emit_and_len(self):
        log = WideEventLog()
        assert len(log) == 0
        log.emit({"request_id": "req-000000"})
        assert len(log) == 1 and log.emitted == 1

    def test_capacity_trims_oldest_but_emitted_is_monotone(self):
        log = WideEventLog(capacity=2)
        for seq in range(5):
            log.emit({"request_id": request_id(seq)})
        assert log.emitted == 5
        assert [e["request_id"] for e in log.events()] == [
            "req-000003",
            "req-000004",
        ]

    def test_tail(self):
        log = WideEventLog()
        for seq in range(4):
            log.emit({"request_id": request_id(seq)})
        assert [e["request_id"] for e in log.tail(2)] == [
            "req-000002",
            "req-000003",
        ]
        assert log.tail(0) == []
        assert len(log.tail(99)) == 4

    def test_write_requires_path(self):
        with pytest.raises(ValueError):
            WideEventLog().write()

    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path)
        ev = _ctx().wide_event(
            outcome="ok", source="solve", latency_s=0.1, attempts_total=1
        )
        log.emit(ev)
        assert log.write() == path
        assert read_events(path) == [ev]

    def test_concurrent_emit_loses_nothing(self):
        log = WideEventLog()
        n_threads, per_thread = 8, 200

        def worker(tid):
            for i in range(per_thread):
                log.emit({"request_id": f"t{tid}-{i}"})

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.emitted == n_threads * per_thread
        assert len(log) == n_threads * per_thread


class TestEventsCli:
    def _write_stream(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = WideEventLog(path)
        for seq in (1, 0):
            ctx = RequestContext(request_id(seq), root=seq)
            ctx.note_attempt(1, "primary", "error" if seq else None, "ok")
            log.emit(
                ctx.wide_event(
                    outcome="ok", source="solve",
                    latency_s=0.1 * (seq + 1), attempts_total=1,
                )
            )
        log.write()
        return path

    def test_canonical_mode_matches_library(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert events_main([path, "--canonical"]) == 0
        out = capsys.readouterr().out
        assert out == canonical_text(read_events(path))

    def test_summary_mode(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert events_main([path]) == 0
        out = capsys.readouterr().out
        assert "2 wide events" in out
        assert "req-000001" in out and "outcome=ok" in out
