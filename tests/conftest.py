"""Shared fixtures: small deterministic graphs and machine shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph
from repro.graph.rmat import RMAT1, RMAT2, rmat_graph
from repro.runtime.machine import MachineConfig


@pytest.fixture
def path_graph() -> CSRGraph:
    """0 -5- 1 -3- 2 -7- 3 -1- 4 (weighted path)."""
    tails = np.array([0, 1, 2, 3])
    heads = np.array([1, 2, 3, 4])
    weights = np.array([5, 3, 7, 1])
    return from_undirected_edges(tails, heads, weights, 5)


@pytest.fixture
def star_graph() -> CSRGraph:
    """Hub 0 connected to 1..8 with weights 1..8."""
    heads = np.arange(1, 9)
    tails = np.zeros(8, dtype=np.int64)
    weights = np.arange(1, 9)
    return from_undirected_edges(tails, heads, weights, 9)


@pytest.fixture
def diamond_graph() -> CSRGraph:
    """Two routes 0->3: 0-1-3 (1+1) and 0-2-3 (5+5); plus chord 1-2 (1)."""
    tails = np.array([0, 1, 0, 2, 1])
    heads = np.array([1, 3, 2, 3, 2])
    weights = np.array([1, 1, 5, 5, 1])
    return from_undirected_edges(tails, heads, weights, 4)


@pytest.fixture
def disconnected_graph() -> CSRGraph:
    """Two components {0,1} and {2,3}; vertex 4 isolated."""
    tails = np.array([0, 2])
    heads = np.array([1, 3])
    weights = np.array([2, 4])
    return from_undirected_edges(tails, heads, weights, 5)


@pytest.fixture
def fig6_graph() -> CSRGraph:
    """The paper's Fig. 6 pull-benefit example.

    A root connected to a 5-clique with weight-10 edges; each clique vertex
    connected to its own isolated (degree-1) pendant vertex with weight 10.
    Run with Δ = 5: the root settles in bucket 0, the clique in bucket 2,
    the pendants in bucket 4.
    """
    clique = np.arange(1, 6)
    pend = np.arange(6, 11)
    tails = [np.zeros(5, dtype=np.int64)]
    heads = [clique]
    # clique edges
    cu, cv = np.triu_indices(5, k=1)
    tails.append(clique[cu])
    heads.append(clique[cv])
    # pendants
    tails.append(clique)
    heads.append(pend)
    tails_arr = np.concatenate(tails)
    heads_arr = np.concatenate(heads)
    weights = np.full(tails_arr.size, 10, dtype=np.int64)
    return from_undirected_edges(tails_arr, heads_arr, weights, 11)


@pytest.fixture(scope="session")
def rmat1_small() -> CSRGraph:
    return rmat_graph(scale=9, seed=42, params=RMAT1)


@pytest.fixture(scope="session")
def rmat2_small() -> CSRGraph:
    return rmat_graph(scale=9, seed=43, params=RMAT2)


@pytest.fixture
def machine4() -> MachineConfig:
    return MachineConfig(num_ranks=4, threads_per_rank=4)


@pytest.fixture
def machine1() -> MachineConfig:
    return MachineConfig(num_ranks=1, threads_per_rank=1)
