"""Typed edge-update batches for live graphs.

A live graph evolves through :class:`UpdateBatch` objects: atomic sets of
edge inserts, deletes and reweights against a fixed vertex universe.
Applying a batch (:func:`apply_batch`) produces a brand-new immutable
:class:`~repro.graph.csr.CSRGraph` — snapshots never share mutable state —
plus an :class:`EdgeDelta`, the arc-level diff the incremental repair
(:mod:`repro.dynamic.repair`) seeds its changed-vertex frontier from.

The delta is computed by *key lookup*, not by diffing the full arc sets:
only the ``(tail, head)`` keys the batch names can change, so the old and
new weights of exactly those keys are gathered (O(batch · log m)) and
classified into

- **improved** arcs — present in the new graph with a strictly smaller
  weight than before (or newly present): direct relaxation seeds;
- **worsened** arcs — present in the old graph with a strictly smaller
  weight than now (or removed): damage seeds for the orphaned-subtree
  re-anchoring pass. Worsened arcs carry their *old* weights, because the
  damage test asks which old shortest-path certificates died.

For undirected graphs every update names an undirected edge ``{u, v}``
and both constituent arcs appear in the delta.

:func:`random_update_batch` is the seeded churn generator the serving
benchmarks and the CI ``dynamic-smoke`` job replay: deletes and reweights
sample existing edges, inserts rejection-sample vacant vertex pairs, all
from one :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distances import INF
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "UpdateBatch",
    "EdgeDelta",
    "apply_batch",
    "random_update_batch",
]


def _as_ids(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr


@dataclass(frozen=True)
class UpdateBatch:
    """One atomic batch of edge updates.

    All arrays are ``int64`` and parallel within their operation kind.
    For undirected graphs each ``(tail, head)`` pair names the undirected
    edge ``{tail, head}``; orientation is irrelevant and both directed
    arcs are affected.

    Validation at construction covers what is graph-independent (shapes,
    self-loops, negative weights, duplicate keys across operations);
    :meth:`validate_against` adds the graph-dependent checks (ids in
    range, deletes/reweights naming existing edges, inserts naming vacant
    pairs).
    """

    insert_tails: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_heads: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_weights: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    delete_tails: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    delete_heads: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    reweight_tails: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    reweight_heads: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    reweight_weights: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def __post_init__(self) -> None:
        for name in (
            "insert_tails",
            "insert_heads",
            "insert_weights",
            "delete_tails",
            "delete_heads",
            "reweight_tails",
            "reweight_heads",
            "reweight_weights",
        ):
            object.__setattr__(self, name, _as_ids(getattr(self, name), name))
        if not (
            self.insert_tails.shape
            == self.insert_heads.shape
            == self.insert_weights.shape
        ):
            raise ValueError("insert arrays must align")
        if self.delete_tails.shape != self.delete_heads.shape:
            raise ValueError("delete arrays must align")
        if not (
            self.reweight_tails.shape
            == self.reweight_heads.shape
            == self.reweight_weights.shape
        ):
            raise ValueError("reweight arrays must align")
        for tails, heads in (
            (self.insert_tails, self.insert_heads),
            (self.delete_tails, self.delete_heads),
            (self.reweight_tails, self.reweight_heads),
        ):
            if tails.size and np.any(tails == heads):
                raise ValueError("self-loop updates are not allowed")
        for weights in (self.insert_weights, self.reweight_weights):
            if weights.size and weights.min() < 0:
                raise ValueError("edge weights must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, *, inserts=None, deletes=None, reweights=None) -> "UpdateBatch":
        """Construct from ``(tails, heads[, weights])`` triples/pairs."""
        it, ih, iw = inserts if inserts is not None else ((), (), ())
        dt, dh = deletes if deletes is not None else ((), ())
        rt, rh, rw = reweights if reweights is not None else ((), (), ())
        return cls(it, ih, iw, dt, dh, rt, rh, rw)

    @property
    def num_inserts(self) -> int:
        return int(self.insert_tails.size)

    @property
    def num_deletes(self) -> int:
        return int(self.delete_tails.size)

    @property
    def num_reweights(self) -> int:
        return int(self.reweight_tails.size)

    @property
    def size(self) -> int:
        """Total number of edge operations in the batch."""
        return self.num_inserts + self.num_deletes + self.num_reweights

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    # ------------------------------------------------------------------
    def _keys(self, num_vertices: int, undirected: bool) -> dict[str, np.ndarray]:
        """Packed ``tail * n + head`` keys per op kind (canonicalised when
        undirected so both orientations of one edge collide)."""

        def pack(tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
            if undirected:
                lo = np.minimum(tails, heads)
                hi = np.maximum(tails, heads)
                return lo * num_vertices + hi
            return tails * num_vertices + heads

        return {
            "insert": pack(self.insert_tails, self.insert_heads),
            "delete": pack(self.delete_tails, self.delete_heads),
            "reweight": pack(self.reweight_tails, self.reweight_heads),
        }

    def validate_against(self, graph: CSRGraph) -> None:
        """Raise ``ValueError`` unless the batch is well-formed for ``graph``.

        Checks: vertex ids in range, no edge named twice (within or across
        operation kinds, counting both orientations for undirected graphs),
        deletes and reweights name existing edges, inserts name vacant pairs.
        """
        n = graph.num_vertices
        for name, arr in (
            ("insert", self.insert_tails),
            ("insert", self.insert_heads),
            ("delete", self.delete_tails),
            ("delete", self.delete_heads),
            ("reweight", self.reweight_tails),
            ("reweight", self.reweight_heads),
        ):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(f"{name} vertex ids out of range [0, {n})")
        keys = self._keys(n, graph.undirected)
        combined = np.concatenate([keys["insert"], keys["delete"], keys["reweight"]])
        if combined.size != np.unique(combined).size:
            raise ValueError("batch names the same edge more than once")
        existing = _arc_weights(graph, np.concatenate([keys["delete"], keys["reweight"]]))
        if np.any(existing >= INF):
            raise ValueError("delete/reweight names an edge absent from the graph")
        inserted = _arc_weights(graph, keys["insert"])
        if np.any(inserted < INF):
            raise ValueError(
                "insert names an edge already present (use a reweight instead)"
            )


def _arc_weights(graph: CSRGraph, keys: np.ndarray) -> np.ndarray:
    """Weight of the arc with packed key ``tail * n + head`` per entry.

    Absent arcs report ``INF``. For undirected graphs keys may be
    canonicalised ``(min, max)`` pairs — the symmetrized arc set contains
    both orientations, so the canonical one always exists when the edge
    does. Duplicate ``(tail, head)`` arcs would make the lookup pick the
    first of the sorted run; every graph built through
    :func:`repro.graph.builder.from_edges` with dedup has unique arcs.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    n = graph.num_vertices
    graph_keys = graph.arc_tails() * n + graph.adj
    order = np.argsort(graph_keys, kind="stable")
    sorted_keys = graph_keys[order]
    sorted_weights = graph.weights[order]
    pos = np.searchsorted(sorted_keys, keys)
    out = np.full(keys.size, INF, dtype=np.int64)
    in_range = pos < sorted_keys.size
    hit = in_range.copy()
    hit[in_range] = sorted_keys[pos[in_range]] == keys[in_range]
    out[hit] = sorted_weights[pos[hit]]
    return out


@dataclass(frozen=True)
class EdgeDelta:
    """Arc-level diff between two consecutive snapshots.

    ``improved_*`` arcs exist in the new graph with a weight strictly
    below their old weight (``INF`` when newly inserted) and carry the
    *new* weight — they are direct relaxation seeds. ``worsened_*`` arcs
    existed in the old graph with a weight strictly below their new one
    (``INF`` when deleted) and carry the *old* weight — they are the
    candidate dead shortest-path certificates the damage pass starts
    from. For undirected graphs both orientations of every touched edge
    are present.
    """

    improved_tails: np.ndarray
    improved_heads: np.ndarray
    improved_weights: np.ndarray
    worsened_tails: np.ndarray
    worsened_heads: np.ndarray
    worsened_weights: np.ndarray

    @property
    def num_improved(self) -> int:
        return int(self.improved_tails.size)

    @property
    def num_worsened(self) -> int:
        return int(self.worsened_tails.size)

    @property
    def is_empty(self) -> bool:
        return self.num_improved + self.num_worsened == 0


def apply_batch(graph: CSRGraph, batch: UpdateBatch) -> tuple[CSRGraph, EdgeDelta]:
    """Apply ``batch`` to ``graph``; return ``(new_graph, delta)``.

    The new graph is rebuilt through the standard edge-list pipeline
    (same dedup/sort invariants as any freshly constructed graph) and is
    **not** weight-sorted — snapshot consumers sort on context creation
    exactly like cold starts do. The vertex universe is fixed: updates
    never add or remove vertices.
    """
    batch.validate_against(graph)
    n = graph.num_vertices
    tails, heads, weights = graph.to_edge_list()

    def arcs(t: np.ndarray, h: np.ndarray, w: np.ndarray | None):
        """Both orientations for undirected graphs, as-given otherwise."""
        if graph.undirected:
            at = np.concatenate([t, h])
            ah = np.concatenate([h, t])
            aw = None if w is None else np.concatenate([w, w])
            return at, ah, aw
        return t, h, w

    rem_t, rem_h, _ = arcs(
        np.concatenate([batch.delete_tails, batch.reweight_tails]),
        np.concatenate([batch.delete_heads, batch.reweight_heads]),
        None,
    )
    removal_keys = rem_t * n + rem_h
    keep = ~np.isin(tails * n + heads, removal_keys)
    add_t, add_h, add_w = arcs(
        np.concatenate([batch.insert_tails, batch.reweight_tails]),
        np.concatenate([batch.insert_heads, batch.reweight_heads]),
        np.concatenate([batch.insert_weights, batch.reweight_weights]),
    )
    new_graph = from_edges(
        np.concatenate([tails[keep], add_t]),
        np.concatenate([heads[keep], add_h]),
        np.concatenate([weights[keep], add_w]),
        n,
        undirected=graph.undirected,
        dedup=True,
    )

    # Arc-level delta over exactly the touched keys.
    touch_t, touch_h, _ = arcs(
        np.concatenate([batch.insert_tails, batch.delete_tails, batch.reweight_tails]),
        np.concatenate([batch.insert_heads, batch.delete_heads, batch.reweight_heads]),
        None,
    )
    touched_keys = touch_t * n + touch_h
    old_w = _arc_weights(graph, touched_keys)
    new_w = _arc_weights(new_graph, touched_keys)
    improved = new_w < old_w
    worsened = old_w < new_w
    delta = EdgeDelta(
        improved_tails=touch_t[improved],
        improved_heads=touch_h[improved],
        improved_weights=new_w[improved],
        worsened_tails=touch_t[worsened],
        worsened_heads=touch_h[worsened],
        worsened_weights=old_w[worsened],
    )
    return new_graph, delta


def random_update_batch(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    churn_fraction: float = 0.01,
    insert_fraction: float = 0.34,
    delete_fraction: float = 0.33,
    max_weight: int | None = None,
) -> UpdateBatch:
    """Seeded churn: a random valid batch touching ``churn_fraction`` of edges.

    Deletes and reweights sample distinct existing edges; inserts
    rejection-sample vacant vertex pairs (and are dropped, not retried
    forever, if the graph is too dense to place them). Weight draws are
    uniform in ``[1, max_weight]`` (default: the graph's current max
    weight, or 16 on an edgeless graph). Determinism: one ``rng`` stream,
    fixed draw order.
    """
    if not 0.0 <= insert_fraction <= 1.0 or not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("operation fractions must be in [0, 1]")
    if insert_fraction + delete_fraction > 1.0:
        raise ValueError("insert_fraction + delete_fraction must be <= 1")
    if churn_fraction <= 0.0:
        raise ValueError("churn_fraction must be positive")
    n = graph.num_vertices
    m = graph.num_undirected_edges if graph.undirected else graph.num_arcs
    w_hi = int(max_weight) if max_weight is not None else max(graph.max_weight, 1)
    w_hi = max(w_hi, 1)
    ops = max(1, int(round(churn_fraction * m)))
    want_insert = int(round(ops * insert_fraction))
    want_delete = int(round(ops * delete_fraction))
    want_reweight = max(ops - want_insert - want_delete, 0)

    # --- existing-edge sample (deletes + reweights), distinct edges ----
    tails, heads, weights = graph.to_edge_list()
    if graph.undirected:
        fwd = tails < heads
        tails, heads = tails[fwd], heads[fwd]
    existing = np.sort(tails * n + heads)
    take = min(want_delete + want_reweight, tails.size)
    picked = (
        rng.choice(tails.size, size=take, replace=False)
        if take
        else np.empty(0, dtype=np.int64)
    )
    picked = np.sort(picked)
    num_delete = min(want_delete, take)
    del_idx = picked[:num_delete]
    rew_idx = picked[num_delete:]
    rew_w = (
        rng.integers(1, w_hi + 1, size=rew_idx.size, dtype=np.int64)
        if rew_idx.size
        else np.empty(0, dtype=np.int64)
    )

    # --- inserts: vacant pairs, distinct from each other -----------------
    ins_t: list[int] = []
    ins_h: list[int] = []
    chosen = set()
    attempts = 0
    limit = 20 * max(want_insert, 1) + 10
    while len(ins_t) < want_insert and attempts < limit and n >= 2:
        attempts += 1
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            continue
        key = min(u, v) * n + max(u, v) if graph.undirected else u * n + v
        if key in chosen:
            continue
        pos = np.searchsorted(existing, key) if graph.undirected else None
        if graph.undirected:
            if pos < existing.size and existing[pos] == key:
                continue
        elif _arc_weights(graph, np.array([key]))[0] < INF:
            continue
        chosen.add(key)
        ins_t.append(u)
        ins_h.append(v)
    ins_w = (
        rng.integers(1, w_hi + 1, size=len(ins_t), dtype=np.int64)
        if ins_t
        else np.empty(0, dtype=np.int64)
    )

    return UpdateBatch(
        insert_tails=np.asarray(ins_t, dtype=np.int64),
        insert_heads=np.asarray(ins_h, dtype=np.int64),
        insert_weights=ins_w,
        delete_tails=tails[del_idx],
        delete_heads=heads[del_idx],
        reweight_tails=tails[rew_idx],
        reweight_heads=heads[rew_idx],
        reweight_weights=rew_w,
    )
