"""Latency accounting and SLO evaluation for the query service.

The registry's histograms are great for scraping but quantize latency
into fixed buckets; SLO verdicts want exact order statistics. The broker
therefore also streams every completed request's latency into a bounded
:class:`LatencyWindow` (reservoir of the most recent ``window`` samples,
split by result source), from which :func:`percentile` computes exact
p50/p99 and :class:`SloPolicy` renders a pass/fail verdict — the object
``repro serve-bench`` and the CI gate consume.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["LatencyWindow", "SloPolicy", "percentile"]


def percentile(samples, q: float) -> float:
    """Exact q-th percentile (0..100) of ``samples``; NaN when empty.

    Uses the 'lower' interpolation so small sample sets report a latency
    that was actually observed rather than an average of two.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q, method="lower"))


class LatencyWindow:
    """Sliding window of request latencies, split by result source.

    Each sample carries its record-time timestamp (from the injectable
    ``clock`` — the broker passes its own, so fake-clock tests and the
    burn-rate monitor see one time base). :meth:`samples` keeps returning
    bare latencies; :meth:`recent` is the time-windowed view the
    multi-window burn-rate monitor (:mod:`repro.obs.burnrate`) consumes.
    """

    def __init__(
        self,
        window: int = 100_000,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.clock = clock
        self._samples: dict[str, deque] = {}
        self._lock = threading.Lock()
        self.count = 0

    def record(self, source: str, latency_s: float) -> None:
        with self._lock:
            bucket = self._samples.get(source)
            if bucket is None:
                bucket = self._samples[source] = deque(maxlen=self.window)
            bucket.append((self.clock(), float(latency_s)))
            self.count += 1

    def samples(self, source: str | None = None) -> list[float]:
        """Samples of one source, or all sources merged (``None``).

        Merged order is per-source insertion order: each source's samples
        appear oldest-first, sources in first-record order.
        """
        with self._lock:
            if source is not None:
                return [lat for _, lat in self._samples.get(source, ())]
            merged: list[float] = []
            for bucket in self._samples.values():
                merged.extend(lat for _, lat in bucket)
            return merged

    def recent(
        self, window_s: float, *, now: float | None = None
    ) -> list[tuple[str, float, float]]:
        """Samples recorded within the last ``window_s`` seconds, as
        ``(source, timestamp, latency_s)`` rows (per-source insertion
        order, sources in first-record order)."""
        with self._lock:
            cutoff = (self.clock() if now is None else now) - float(window_s)
            return [
                (source, t, lat)
                for source, bucket in self._samples.items()
                for t, lat in bucket
                if t >= cutoff
            ]

    def summary(self) -> dict[str, float | int]:
        """p50/p99/mean over all sources plus per-source p50s."""
        merged = self.samples()
        row: dict[str, float | int] = {
            "requests": len(merged),
            "p50_s": percentile(merged, 50),
            "p99_s": percentile(merged, 99),
            "mean_s": float(np.mean(merged)) if merged else float("nan"),
        }
        with self._lock:
            sources = list(self._samples)
        for source in sorted(sources):
            row[f"p50_{source}_s"] = percentile(self.samples(source), 50)
        return row


@dataclass(frozen=True)
class SloPolicy:
    """Service-level objectives; ``None`` disables a bound.

    ``p50_s``/``p99_s`` bound the merged latency percentiles,
    ``min_hit_rate`` bounds the cache hit rate from below, and
    ``max_shed_fraction`` bounds sheds over offered load. :meth:`check`
    returns the list of violations (empty = SLOs met) against a report
    row as produced by ``QueryBroker.report()``.
    """

    p50_s: float | None = None
    p99_s: float | None = None
    min_hit_rate: float | None = None
    max_shed_fraction: float | None = None

    def check(self, report: dict) -> list[str]:
        violations: list[str] = []

        def over(key: str, bound: float | None) -> None:
            value = report.get(key)
            if bound is not None and value is not None and value > bound:
                violations.append(f"{key} {value:.6f} > SLO {bound:.6f}")

        over("p50_s", self.p50_s)
        over("p99_s", self.p99_s)
        if self.min_hit_rate is not None:
            hit_rate = report.get("cache_hit_rate")
            if hit_rate is not None and hit_rate < self.min_hit_rate:
                violations.append(
                    f"cache_hit_rate {hit_rate:.3f} < SLO {self.min_hit_rate:.3f}"
                )
        if self.max_shed_fraction is not None:
            offered = report.get("offered", 0)
            shed = report.get("shed", 0)
            if offered:
                fraction = shed / offered
                if fraction > self.max_shed_fraction:
                    violations.append(
                        f"shed fraction {fraction:.3f} > SLO "
                        f"{self.max_shed_fraction:.3f}"
                    )
        return violations
