"""Byte-budgeted LRU distance cache (DESIGN.md §11).

One :class:`DistanceCache` serves one (graph, config, machine) triple —
the broker owns exactly one, so the key is simply the root. Values are
full distance arrays, stored read-only so a hit can hand back the cached
array itself without a copy: hits are **bit-identical** to a fresh solve
because the cached array *was* a fresh solve's output, and solves are
deterministic. A miss degrades to an exact solve — the cache can only
ever make a query faster, never different.

Eviction is LRU under a byte budget (``distances.nbytes`` per entry). An
entry larger than the whole budget is rejected outright (counted in
``stats.rejected``) instead of evicting everything for a value that
cannot fit. All operations are thread-safe; stats mirror into an optional
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheStats", "DistanceCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus the live byte footprint."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0
    bytes_in_use: int = 0
    byte_budget: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_row(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "bytes_in_use": self.bytes_in_use,
            "byte_budget": self.byte_budget,
        }


@dataclass
class _Entry:
    distances: np.ndarray
    nbytes: int = field(default=0)


class DistanceCache:
    """LRU root → distance-array cache under a byte budget.

    ``byte_budget=0`` disables storage entirely (every ``put`` is
    rejected, every ``get`` misses) — the broker uses that to run a
    cache-less baseline through the identical code path.
    """

    def __init__(self, byte_budget: int, *, registry=None) -> None:
        if byte_budget < 0:
            raise ValueError("byte_budget must be >= 0")
        self.byte_budget = int(byte_budget)
        self.stats = CacheStats(byte_budget=self.byte_budget)
        self.registry = registry
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, root: int) -> bool:
        with self._lock:
            return int(root) in self._entries

    def roots(self) -> list[int]:
        """Cached roots, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def get(self, root: int) -> np.ndarray | None:
        """The cached distance array for ``root`` (read-only), or None.

        A hit refreshes the entry's LRU position. Misses and hits are
        both counted — the hit rate is the headline cache metric.
        """
        root = int(root)
        with self._lock:
            entry = self._entries.get(root)
            if entry is None:
                self.stats.misses += 1
                self._mirror("serve_cache_misses_total", 1)
                return None
            self._entries.move_to_end(root)
            self.stats.hits += 1
            self._mirror("serve_cache_hits_total", 1)
            return entry.distances

    def peek(self, root: int) -> np.ndarray | None:
        """Like :meth:`get` but touches neither stats nor LRU order."""
        with self._lock:
            entry = self._entries.get(int(root))
            return entry.distances if entry is not None else None

    def put(self, root: int, distances: np.ndarray) -> bool:
        """Insert ``root``'s distances; returns False when rejected.

        The array is stored as a read-only view (no copy) so the caller
        must not mutate it afterwards — the broker hands out the same
        array to result futures, which makes hits bit-identical by
        construction. Evicts LRU entries until the budget holds.
        """
        root = int(root)
        distances = np.asarray(distances)
        distances.setflags(write=False)
        nbytes = int(distances.nbytes)
        with self._lock:
            if nbytes > self.byte_budget:
                self.stats.rejected += 1
                self._mirror("serve_cache_rejected_total", 1)
                return False
            old = self._entries.pop(root, None)
            if old is not None:
                self.stats.bytes_in_use -= old.nbytes
            while (
                self._entries
                and self.stats.bytes_in_use + nbytes > self.byte_budget
            ):
                _, victim = self._entries.popitem(last=False)
                self.stats.bytes_in_use -= victim.nbytes
                self.stats.evictions += 1
                self._mirror("serve_cache_evictions_total", 1)
            self._entries[root] = _Entry(distances, nbytes)
            self.stats.bytes_in_use += nbytes
            self.stats.insertions += 1
            self._gauge()
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes_in_use = 0
            self._gauge()

    # ------------------------------------------------------------------
    def _mirror(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.inc(name, value)

    def _gauge(self) -> None:
        if self.registry is not None:
            self.registry.set_gauge(
                "serve_cache_bytes",
                self.stats.bytes_in_use,
                help="live byte footprint of the distance cache",
            )
            self.registry.set_gauge(
                "serve_cache_entries",
                len(self._entries),
                help="live entry count of the distance cache",
            )
