"""Request-scoped trace context for the serving plane (DESIGN.md §14).

The PR 4 tracer answers "where does *a solve* spend its time"; the
serving plane needs the orthogonal question answered — "what happened to
*this request*" — across every decision point it crosses: admission,
the cache tiers, the micro-batcher, solve attempts (with their chaos
draws), retries, hedges, the circuit breaker and its degradation
ladder. :class:`RequestContext` is the carrier: the broker mints one per
admitted request (a monotonically increasing ``req-NNNNNN`` id, so ids
are deterministic whenever the submission order is), attaches it to the
:class:`~repro.serve.request.QueryRequest`, and every layer the request
crosses *notes* its decision onto it. At terminal completion the context
is folded into one structured **wide event**
(:mod:`repro.serve.events`) — the canonical per-request record the
journey harness reconciles against tracer spans, registry counters and
the SLO window.

Pay-for-use, like the rest of ``obs/``: a broker with neither a tracer
nor an event log attached mints no contexts, and every note site is a
single ``ctx is not None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RequestContext", "request_id"]


def request_id(seq: int) -> str:
    """Render the canonical request id for admission sequence ``seq``."""
    return f"req-{seq:06d}"


@dataclass
class RequestContext:
    """Everything one request experienced, noted layer by layer.

    Attributes are grouped by the layer that writes them:

    - **broker admission**: ``request_id``, ``root``, ``submitted_at``,
      ``admission`` (``"admitted"`` / ``"shed"``), ``cache_tier`` — the
      submit-time cache verdict (``"hit"``, ``"stale_hit"`` while the
      breaker is degraded, or ``"miss"``);
    - **micro-batcher**: ``queue_waits_s`` — one entry per dispatch
      (retries re-enter the queue, so a retried request has several),
      measured from the entry's enqueue time (the *original* admission
      time survives retries, matching the batcher's latency trigger);
    - **batch execution**: ``batches`` — the batch ids that served this
      request, ``negative`` — failed fast on a negative-cache tombstone;
    - **solve attempts**: ``attempts`` — one record per attempt with the
      breaker ``decision`` (``primary``/``probe``/``degraded``), the
      chaos ``draw`` for that (root, attempt) when chaos is armed, and
      the attempt ``outcome`` (``"ok"`` or a failure class);
    - **degradation ladder**: ``degraded_tier``
      (``"stale_cache"``/``"bounded_exact"``/``"refused"``) and
      ``breaker_open`` — the open classes at the time.

    The context is written by exactly one thread at a time (the request
    is owned by its submitter until queued, then by one worker per
    dispatch), so notes need no locking.
    """

    request_id: str
    root: int
    submitted_at: float = 0.0
    #: graph snapshot the request was pinned to at admission (0 on a
    #: broker that never applied updates). Deterministic under seeded
    #: replay whenever the update schedule is part of the replay.
    snapshot_id: int = 0
    admission: str = "admitted"
    cache_tier: str = "miss"
    negative: bool = False
    batches: list[int] = field(default_factory=list)
    queue_waits_s: list[float] = field(default_factory=list)
    attempts: list[dict[str, Any]] = field(default_factory=list)
    breaker_open: tuple[str, ...] = ()
    degraded_tier: str | None = None

    # ------------------------------------------------------------------
    # Note sites, one per layer
    # ------------------------------------------------------------------
    def note_shed(self) -> None:
        """Admission control shed this request (queue at capacity)."""
        self.admission = "shed"

    def note_cache(self, tier: str) -> None:
        """Submit-time cache verdict: ``hit`` / ``stale_hit`` / ``miss``."""
        self.cache_tier = tier

    def note_dequeue(self, wait_s: float) -> None:
        """The micro-batcher took this request after ``wait_s`` queued
        (called by :meth:`~repro.serve.batcher.MicroBatcher.take`)."""
        self.queue_waits_s.append(max(float(wait_s), 0.0))

    def note_batch(self, batch_id: int) -> None:
        """This request was dispatched inside batch ``batch_id``."""
        self.batches.append(int(batch_id))

    def note_negative(self) -> None:
        """Failed fast on a live negative-cache tombstone."""
        self.negative = True

    def note_attempt(
        self,
        attempt: int,
        decision: str,
        draw: str | None,
        outcome: str,
    ) -> None:
        """One solve attempt: breaker ``decision``, chaos ``draw`` (None
        when chaos is off or the draw was clean), and its ``outcome``
        (``"ok"`` or a failure class)."""
        self.attempts.append(
            {
                "attempt": int(attempt),
                "decision": decision,
                "draw": draw,
                "outcome": outcome,
            }
        )

    def note_degraded(self, tier: str, open_classes: tuple[str, ...]) -> None:
        """The degradation ladder served (or refused) this request."""
        self.degraded_tier = tier
        self.breaker_open = tuple(open_classes)

    # ------------------------------------------------------------------
    def wide_event(
        self,
        *,
        outcome: str,
        source: str | None,
        latency_s: float,
        attempts_total: int,
        stale_ok: bool = False,
        degraded: bool = False,
    ) -> dict[str, Any]:
        """Fold the journey into one wide-event dict.

        Decision fields are deterministic under a seeded replay; wall
        timings live under the ``"timing"`` key, which
        :func:`repro.serve.events.canonical_event` strips for the
        replay-identity comparison.
        """
        return {
            "schema": 1,
            "request_id": self.request_id,
            "root": int(self.root),
            "snapshot_id": int(self.snapshot_id),
            "admission": self.admission,
            "cache_tier": self.cache_tier,
            "negative": self.negative,
            "batches": list(self.batches),
            "attempts": [dict(a) for a in self.attempts],
            "breaker_open": list(self.breaker_open),
            "degraded_tier": self.degraded_tier,
            "outcome": outcome,
            "source": source,
            "attempts_total": int(attempts_total),
            "stale_ok": bool(stale_ok),
            "degraded": bool(degraded),
            "timing": {
                "submitted_at": float(self.submitted_at),
                "latency_s": float(latency_s),
                "queue_waits_s": [float(w) for w in self.queue_waits_s],
            },
        }
