"""Update-batch validation and snapshot construction (DESIGN.md §15)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamic.updates import (
    UpdateBatch,
    apply_batch,
    random_update_batch,
)
from repro.graph.rmat import rmat_graph


def edge_set(graph) -> dict[tuple[int, int], int]:
    """Canonical undirected edge set {(min, max): weight}."""
    tails, heads, weights = graph.to_edge_list()
    out = {}
    for t, h, w in zip(tails, heads, weights):
        if t < h:
            out[(int(t), int(h))] = int(w)
    return out


class TestUpdateBatchValidation:
    def test_build_empty(self):
        batch = UpdateBatch.build()
        assert batch.is_empty
        assert batch.size == 0

    def test_build_counts(self):
        batch = UpdateBatch.build(
            inserts=([0], [1], [7]),
            deletes=([2], [3]),
            reweights=([4, 5], [5, 6], [1, 2]),
        )
        assert batch.num_inserts == 1
        assert batch.num_deletes == 1
        assert batch.num_reweights == 2
        assert batch.size == 4

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch.build(inserts=([3], [3], [1]))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            UpdateBatch.build(inserts=([0], [1], [-4]))

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch.build(inserts=([0, 1], [1], [2]))

    def test_validate_rejects_out_of_range(self, path_graph):
        batch = UpdateBatch.build(inserts=([0], [99], [1]))
        with pytest.raises(ValueError, match="range"):
            batch.validate_against(path_graph)

    def test_validate_rejects_insert_of_existing_edge(self, path_graph):
        batch = UpdateBatch.build(inserts=([0], [1], [9]))
        with pytest.raises(ValueError, match="reweight"):
            batch.validate_against(path_graph)

    def test_validate_rejects_delete_of_absent_edge(self, path_graph):
        batch = UpdateBatch.build(deletes=([0], [4]))
        with pytest.raises(ValueError, match="absent|exist|name"):
            batch.validate_against(path_graph)

    def test_validate_rejects_reweight_of_absent_edge(self, path_graph):
        batch = UpdateBatch.build(reweights=([0], [4], [3]))
        with pytest.raises(ValueError):
            batch.validate_against(path_graph)

    def test_validate_rejects_duplicate_edge_across_ops(self, path_graph):
        batch = UpdateBatch.build(
            deletes=([0], [1]), reweights=([1], [0], [5])
        )
        with pytest.raises(ValueError, match="once|duplicate"):
            batch.validate_against(path_graph)


class TestApplyBatch:
    def test_insert_delete_reweight_roundtrip(self, path_graph):
        # path 0-1-2-3-4; delete 2-3, reweight 0-1 to 9, insert 0-4 w=2.
        batch = UpdateBatch.build(
            inserts=([0], [4], [2]),
            deletes=([2], [3]),
            reweights=([0], [1], [9]),
        )
        new_graph, delta = apply_batch(path_graph, batch)
        edges = edge_set(new_graph)
        assert (2, 3) not in edges
        assert edges[(0, 1)] == 9
        assert edges[(0, 4)] == 2
        assert new_graph.undirected
        # Old graph untouched (snapshots are immutable).
        assert edge_set(path_graph)[(0, 1)] == 5

    def test_delta_classifies_improved_and_worsened(self, path_graph):
        batch = UpdateBatch.build(
            inserts=([0], [4], [2]),    # improved: new edge
            deletes=([2], [3]),         # worsened: weight -> INF
            reweights=([0], [1], [9]),  # worsened: 5 -> 9
        )
        _, delta = apply_batch(path_graph, batch)
        # Both orientations of every touched edge appear.
        improved = set(zip(delta.improved_tails, delta.improved_heads))
        worsened = set(zip(delta.worsened_tails, delta.worsened_heads))
        assert (0, 4) in improved and (4, 0) in improved
        assert (2, 3) in worsened and (3, 2) in worsened
        assert (0, 1) in worsened and (1, 0) in worsened
        assert delta.num_improved == 2
        assert delta.num_worsened == 4

    def test_reweight_down_is_improved(self, path_graph):
        batch = UpdateBatch.build(reweights=([0], [1], [1]))
        _, delta = apply_batch(path_graph, batch)
        assert delta.num_improved == 2
        assert delta.num_worsened == 0
        # Improved arcs carry the NEW weight.
        assert set(delta.improved_weights) == {1}

    def test_empty_batch_is_noop(self, path_graph):
        new_graph, delta = apply_batch(path_graph, UpdateBatch.build())
        assert delta.is_empty
        assert edge_set(new_graph) == edge_set(path_graph)


class TestRandomUpdateBatch:
    def test_deterministic_per_seed(self):
        g = rmat_graph(8, seed=1)
        b1 = random_update_batch(g, np.random.default_rng(5))
        b2 = random_update_batch(g, np.random.default_rng(5))
        for name in (
            "insert_tails", "insert_heads", "insert_weights",
            "delete_tails", "delete_heads",
            "reweight_tails", "reweight_heads", "reweight_weights",
        ):
            np.testing.assert_array_equal(getattr(b1, name), getattr(b2, name))

    def test_validates_against_source_graph(self):
        g = rmat_graph(8, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(5):
            batch = random_update_batch(g, rng, churn_fraction=0.05)
            batch.validate_against(g)  # raises on any malformed op
            g, _ = apply_batch(g, batch)

    def test_churn_fraction_scales_ops(self):
        g = rmat_graph(9, seed=2)
        small = random_update_batch(
            g, np.random.default_rng(1), churn_fraction=0.01
        )
        big = random_update_batch(
            g, np.random.default_rng(1), churn_fraction=0.1
        )
        assert big.size > small.size

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 2**31 - 1), churn=st.floats(0.005, 0.2))
    def test_apply_preserves_csr_invariants(self, seed, churn):
        g = rmat_graph(6, seed=3)
        batch = random_update_batch(
            g, np.random.default_rng(seed), churn_fraction=churn
        )
        new_graph, delta = apply_batch(g, batch)
        # CSR invariants: sorted symmetric arc set, aligned arrays.
        assert new_graph.indptr[0] == 0
        assert new_graph.indptr[-1] == new_graph.adj.size
        assert new_graph.adj.size == new_graph.weights.size
        assert new_graph.undirected
        fwd = edge_set(new_graph)
        tails, heads, weights = new_graph.to_edge_list()
        rev = {
            (int(h), int(t)): int(w)
            for t, h, w in zip(tails, heads, weights)
            if h < t
        }
        assert fwd == rev  # both arc orientations agree
        # Delta accounting matches the actual edge-set difference.
        old = edge_set(g)
        changed = {
            e for e in set(old) | set(fwd)
            if old.get(e) != fwd.get(e)
        }
        touched = set()
        for t, h in zip(delta.improved_tails, delta.improved_heads):
            touched.add((min(int(t), int(h)), max(int(t), int(h))))
        for t, h in zip(delta.worsened_tails, delta.worsened_heads):
            touched.add((min(int(t), int(h)), max(int(t), int(h))))
        assert touched == changed


def test_random_batch_on_directed_graph_is_valid():
    tails = np.array([0, 1, 2, 3])
    heads = np.array([1, 2, 3, 0])
    weights = np.array([1, 2, 3, 4])
    from repro.graph.builder import from_edges

    g = from_edges(tails, heads, weights, 4, undirected=False)
    batch = random_update_batch(g, np.random.default_rng(0), churn_fraction=0.5)
    batch.validate_against(g)
    apply_batch(g, batch)
