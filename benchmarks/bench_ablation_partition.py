"""Ablation — vertex distribution: block vs degree-balanced, and the
Graph 500 label scramble.

Section III-E observes that thread load is the *aggregate degree* of owned
vertices, so any skew in where the hubs land causes imbalance. Graph 500
scrambles vertex labels precisely so block partitions do not inherit the
R-MAT process's id-locality. This ablation quantifies both effects:

1. on a standard (scrambled) graph, block vs degree-balanced boundaries;
2. on an *unscrambled* R-MAT graph (hubs concentrated at low ids — the
   worst case for block distribution), where degree balancing rescues the
   run.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, rmat_graph


@functools.lru_cache(maxsize=1)
def compute_rows():
    machine = default_machine(16)
    rows = []
    scrambled = cached_rmat(BENCH_SCALE, "rmat1")
    unscrambled = rmat_graph(
        BENCH_SCALE, params=RMAT1, seed=1, scramble=False
    ).sorted_by_weight()
    for label, graph in (("scrambled", scrambled), ("unscrambled", unscrambled)):
        root = choose_root(graph, seed=0)
        for strategy in ("block", "degree"):
            cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                               use_hybrid=True, partition=strategy)
            res = solve_sssp(graph, root, algorithm=f"opt-{strategy}",
                             config=cfg, machine=machine)
            rows.append(
                {
                    "labels": label,
                    "partition": strategy,
                    "gteps": res.gteps,
                    "compute_ms": res.cost.compute_time * 1e3,
                    "comm_ms": res.cost.comm_time * 1e3,
                }
            )
    return rows


def test_ablation_partition(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Ablation — block vs degree-balanced partition")
    by = {(r["labels"], r["partition"]): r for r in rows}
    # Worst case for block distribution: unscrambled labels. Degree
    # balancing must recover a clear win there.
    assert (
        by[("unscrambled", "degree")]["gteps"]
        > by[("unscrambled", "block")]["gteps"]
    )
    # On scrambled labels both strategies are in the same ballpark
    # (scrambling is what makes block distribution viable at all).
    ratio = (
        by[("scrambled", "degree")]["gteps"]
        / by[("scrambled", "block")]["gteps"]
    )
    assert 0.5 < ratio < 2.0


if __name__ == "__main__":
    print_table(compute_rows(), "Ablation — partition strategies")
