"""Sequential reference solvers and result validation.

Every distributed variant in this package must produce exactly the distances
computed here. Two independent references are provided:

- :func:`dijkstra_reference` — a binary-heap Dijkstra written directly
  against the CSR arrays (handles zero-weight edges, used as ground truth);
- :func:`scipy_reference` — ``scipy.sparse.csgraph.dijkstra`` as an
  independent cross-check (requires strictly positive weights because
  ``csr_matrix`` cannot represent explicit zero-weight edges).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.distances import INF, init_distances
from repro.graph.csr import CSRGraph

__all__ = [
    "dijkstra_reference",
    "scipy_reference",
    "validate_distances",
    "DistanceMismatch",
]


class DistanceMismatch(AssertionError):
    """Raised when a solver's output disagrees with the reference."""


def dijkstra_reference(graph: CSRGraph, root: int) -> np.ndarray:
    """Binary-heap Dijkstra over the CSR arrays (ground truth).

    Runs in ``O(m log n)``; handles zero-weight edges and disconnected
    graphs (unreached vertices keep distance :data:`~repro.core.distances.INF`).
    """
    n = graph.num_vertices
    d = init_distances(n, root)
    indptr, adj, weights = graph.indptr, graph.adj, graph.weights
    heap: list[tuple[int, int]] = [(0, root)]
    settled = np.zeros(n, dtype=bool)
    while heap:
        dist, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for i in range(lo, hi):
            v = adj[i]
            nd = dist + weights[i]
            if nd < d[v]:
                d[v] = nd
                heapq.heappush(heap, (int(nd), int(v)))
    return d


def scipy_reference(graph: CSRGraph, root: int) -> np.ndarray:
    """Distances via ``scipy.sparse.csgraph.dijkstra`` (cross-check).

    Raises ``ValueError`` on graphs with zero-weight edges, which a sparse
    matrix cannot represent faithfully.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    if graph.weights.size and graph.weights.min() == 0:
        raise ValueError("scipy reference requires strictly positive weights")
    n = graph.num_vertices
    mat = csr_matrix(
        (graph.weights.astype(np.float64), graph.adj, graph.indptr), shape=(n, n)
    )
    dist = sp_dijkstra(mat, directed=True, indices=root)
    out = np.full(n, INF, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = np.round(dist[finite]).astype(np.int64)
    return out


def validate_distances(
    computed: np.ndarray,
    graph: CSRGraph,
    root: int,
    *,
    reference: np.ndarray | None = None,
) -> None:
    """Assert ``computed`` equals the reference distances.

    Raises :class:`DistanceMismatch` with a diagnostic summary otherwise.
    """
    if reference is None:
        reference = dijkstra_reference(graph, root)
    computed = np.asarray(computed)
    if computed.shape != reference.shape:
        raise DistanceMismatch(
            f"shape mismatch: {computed.shape} vs {reference.shape}"
        )
    bad = np.nonzero(computed != reference)[0]
    if bad.size:
        v = int(bad[0])
        raise DistanceMismatch(
            f"{bad.size} mismatching distances (root={root}); first at vertex "
            f"{v}: computed={int(computed[v])}, reference={int(reference[v])}"
        )
