"""QueryBroker semantics: admission, coalescing, deadlines, drain/shutdown.

Most tests run the broker in manual mode (``num_workers=0`` with
``process_once``) so batch composition is deterministic; a couple of
threaded smoke tests cover the worker-pool path.
"""

import numpy as np
import pytest

from repro.core.solver import solve_sssp
from repro.graph.roots import choose_root, choose_roots
from repro.runtime.watchdog import DeadlineConfig, SolveTimeout
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.broker import QueryBroker
from repro.serve.chaos import ChaosEvent, ChaosPlan, InjectedFault
from repro.serve.request import (
    ServiceOverload,
    ServiceShutdown,
    ServiceUnavailable,
    SolveCorrupted,
)
from repro.serve.retry import RetryPolicy


def manual_broker(graph, **kwargs):
    kwargs.setdefault("num_workers", 0)
    kwargs.setdefault("flush_interval_s", 0.0)
    kwargs.setdefault("num_ranks", 2)
    kwargs.setdefault("threads_per_rank", 2)
    return QueryBroker(graph, **kwargs)


class TestQueryPath:
    def test_cold_then_warm(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=0))
        cold = broker.query(root)
        warm = broker.query(root)
        assert cold.source == "solve"
        assert warm.source == "cache" and warm.cached
        # a hit hands back the cached array itself: bit-identical for free
        assert warm.distances is cold.distances
        broker.shutdown()

    def test_distances_match_offline_solve(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=1))
        served = broker.query(root)
        offline = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(served.distances, offline.distances)
        assert served.distances.dtype == offline.distances.dtype
        broker.shutdown()

    def test_paths_to_targets(self, path_graph):
        broker = manual_broker(path_graph)
        res = broker.query(0, targets=(4, 2))
        assert res.paths[4] == [0, 1, 2, 3, 4]
        assert res.paths[2] == [0, 1, 2]
        assert res.distance_to(4) == 16
        broker.shutdown()

    def test_unreachable_target_is_none(self, disconnected_graph):
        broker = manual_broker(disconnected_graph)
        res = broker.query(0, targets=(1, 3))
        assert res.paths[1] == [0, 1]
        assert res.paths[3] is None
        broker.shutdown()

    def test_invalid_root_and_target(self, path_graph):
        broker = manual_broker(path_graph)
        with pytest.raises(ValueError, match="root"):
            broker.submit(99)
        with pytest.raises(ValueError, match="target"):
            broker.submit(0, targets=(99,))
        broker.shutdown()

    def test_query_many_input_order(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        roots = [int(r) for r in choose_roots(rmat1_small, 4, seed=2)]
        results = broker.query_many(roots)
        assert [r.root for r in results] == roots
        broker.shutdown()


class TestCoalescing:
    def test_duplicate_roots_share_one_solve(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        root = int(choose_root(rmat1_small, seed=3))
        other = int(choose_root(rmat1_small, seed=4))
        assert root != other
        futures = broker.submit_many([root, root, root, other])
        served = broker.process_once(block=True)
        assert served == 4
        results = [f.result() for f in futures]
        assert [r.source for r in results] == [
            "solve", "coalesced", "coalesced", "solve",
        ]
        assert broker.report()["solves"] == 2
        # coalesced answers are the same array as the fresh solve's
        assert results[1].distances is results[0].distances
        broker.shutdown()

    def test_different_deadlines_never_coalesce(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        root = int(choose_root(rmat1_small, seed=3))
        lax = DeadlineConfig(max_supersteps=100_000)
        f1 = broker.submit(root, deadline=None)
        f2 = broker.submit(root, deadline=lax)
        broker.process_once(block=True)
        assert f1.result().source == "solve"
        assert f2.result().source == "solve"  # own solve, not coalesced
        assert broker.report()["solves"] == 2
        broker.shutdown()

    def test_dispatch_rechecks_cache(self, rmat1_small):
        # A root queued behind an identical earlier batch is answered from
        # the cache at dispatch time, without another solve.
        broker = manual_broker(rmat1_small, max_batch_size=1)
        root = int(choose_root(rmat1_small, seed=3))
        f1 = broker.submit(root)
        f2 = broker.submit(root)  # separate batch (max_batch_size=1)
        broker.process_once(block=True)
        broker.process_once(block=True)
        assert f1.result().source == "solve"
        assert f2.result().source == "cache"
        assert broker.report()["solves"] == 1
        broker.shutdown()


class TestOverloadAndShutdown:
    def test_overload_sheds_typed(self, rmat1_small):
        broker = manual_broker(
            rmat1_small, capacity=2, flush_interval_s=60.0
        )
        roots = [int(r) for r in choose_roots(rmat1_small, 3, seed=5)]
        broker.submit(roots[0])
        broker.submit(roots[1])
        with pytest.raises(ServiceOverload) as info:
            broker.submit(roots[2])
        assert info.value.capacity == 2
        assert broker.queue_depth == 2
        report = broker.report()
        assert report["shed"] == 1
        assert report["offered"] == 3
        assert "serve_shed_total 1" in broker.registry.prometheus_text()
        broker.shutdown()  # graceful: the two queued requests complete
        assert broker.report()["completed"] == 2

    def test_shutdown_drains_queued_work(self, rmat1_small):
        broker = manual_broker(rmat1_small, flush_interval_s=60.0)
        roots = [int(r) for r in choose_roots(rmat1_small, 3, seed=6)]
        futures = broker.submit_many(roots)
        assert not any(f.done() for f in futures)
        broker.shutdown(drain=True)
        assert all(f.done() for f in futures)
        assert [f.result().root for f in futures] == roots

    def test_shutdown_refuses_new_submits(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.shutdown()
        with pytest.raises(ServiceShutdown):
            broker.submit(0)
        with pytest.raises(ServiceShutdown):
            broker.query(0)

    def test_shutdown_without_drain_cancels_queued(self, rmat1_small):
        broker = manual_broker(rmat1_small, flush_interval_s=60.0)
        futures = broker.submit_many(
            [int(r) for r in choose_roots(rmat1_small, 2, seed=7)]
        )
        broker.shutdown(drain=False)
        for future in futures:
            with pytest.raises(ServiceShutdown):
                future.result()
        assert broker.report()["outcome_cancelled"] == 2

    def test_shutdown_idempotent(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.shutdown()
        broker.shutdown()

    def test_context_manager_drains(self, rmat1_small):
        with manual_broker(rmat1_small, flush_interval_s=60.0) as broker:
            future = broker.submit(int(choose_root(rmat1_small, seed=8)))
        assert future.done()
        assert broker.closed


class TestDeadlines:
    def test_deadline_expiry_surfaces_watchdog_timeout(self, rmat1_small):
        # delta=1 forces many bucket epochs, so a 2-superstep budget trips.
        broker = manual_broker(rmat1_small, algorithm="delta", delta=1)
        root = int(choose_root(rmat1_small, seed=3))
        future = broker.submit(
            root, deadline=DeadlineConfig(max_supersteps=2)
        )
        broker.process_once(block=True)
        with pytest.raises(SolveTimeout, match="superstep budget"):
            future.result()
        assert broker.report()["outcome_timeout"] == 1
        broker.shutdown()

    def test_default_deadline_applies(self, rmat1_small):
        broker = manual_broker(
            rmat1_small,
            algorithm="delta",
            delta=1,
            default_deadline=DeadlineConfig(max_supersteps=2),
        )
        root = int(choose_root(rmat1_small, seed=3))
        with pytest.raises(SolveTimeout):
            broker.query(root)
        broker.shutdown()

    def test_timed_out_root_is_not_cached(self, rmat1_small):
        broker = manual_broker(rmat1_small, algorithm="delta", delta=1)
        root = int(choose_root(rmat1_small, seed=3))
        with pytest.raises(SolveTimeout):
            broker.query(root, deadline=DeadlineConfig(max_supersteps=2))
        # a lax retry must re-solve, not hit a poisoned cache entry
        res = broker.query(root)
        assert res.source == "solve"
        broker.shutdown()


class TestWorkersAndTelemetry:
    def test_worker_pool_serves(self, rmat1_small):
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=2, max_batch_size=4, flush_interval_s=0.001,
        )
        roots = [int(r) for r in choose_roots(rmat1_small, 6, seed=9)]
        futures = broker.submit_many(roots + roots)  # half should hit/coalesce
        assert broker.drain(timeout=30.0)
        results = [f.result(timeout=5.0) for f in futures]
        base = {r: results[i].distances for i, r in enumerate(roots)}
        for res in results:
            assert np.array_equal(res.distances, base[res.root])
        broker.shutdown()
        report = broker.report()
        assert report["completed"] == 12
        # with racing workers duplicates may each solve before the cache
        # fills; the guarantee is answer identity, not solve count
        assert 6 <= report["solves"] <= 12

    def test_registry_metrics_exposed(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.query(int(choose_root(rmat1_small, seed=0)))
        broker.shutdown()
        text = broker.registry.prometheus_text()
        for name in (
            "serve_requests_total",
            "serve_batches_total",
            "serve_solves_total",
            "serve_batch_size",
            "serve_request_latency_seconds",
            "serve_queue_depth",
            "serve_cache_misses_total",
        ):
            assert name in text, name

    def test_trace_artifacts_validate(self, rmat1_small, tmp_path):
        from repro.obs.export import validate_trace_file
        from repro.obs.tracer import TraceConfig

        path = tmp_path / "serve.jsonl"
        broker = manual_broker(
            rmat1_small, trace=TraceConfig(path=str(path))
        )
        root = int(choose_root(rmat1_small, seed=0))
        broker.query(root)
        broker.query(root)  # one cache hit
        broker.shutdown()
        fmt, problems = validate_trace_file(str(path))
        assert fmt == "jsonl"
        assert problems == []


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestFailureIsolation:
    def test_failing_root_fails_only_its_request(self, rmat1_small):
        bad, good = (int(r) for r in choose_roots(rmat1_small, 2, seed=3))
        broker = manual_broker(
            rmat1_small,
            max_batch_size=8,
            chaos=ChaosPlan(error_rate=1.0, roots=(bad,)),
        )
        f_bad = broker.submit(bad)
        f_good = broker.submit(good)
        broker.process_once(block=True)  # one batch, two groups
        with pytest.raises(InjectedFault):
            f_bad.result()
        res = f_good.result()
        offline = solve_sssp(rmat1_small, good, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, offline.distances)
        assert broker.report()["outcome_error"] == 1
        broker.shutdown()

    def test_coalesced_requests_share_the_failure(self, rmat1_small):
        bad = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            max_batch_size=8,
            chaos=ChaosPlan(error_rate=1.0, roots=(bad,)),
        )
        futures = broker.submit_many([bad, bad])
        broker.process_once(block=True)
        for future in futures:
            with pytest.raises(InjectedFault):
                future.result()
        broker.shutdown()


class TestRetries:
    def test_retry_succeeds_after_transient_fault(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(error_rate=1.0, roots=(root,),
                            max_faulty_attempts=1),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        )
        res = broker.query(root)
        assert res.attempts == 2
        assert res.retried
        assert res.source == "solve"
        offline = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, offline.distances)
        report = broker.report()
        assert report["retries"] == 1
        assert report["retried_ok"] == 1
        assert report["outcome_solve"] == 1
        broker.shutdown()

    def test_retry_budget_exhausted_is_typed(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(error_rate=1.0, roots=(root,)),  # never clean
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        with pytest.raises(InjectedFault):
            broker.query(root)
        report = broker.report()
        assert report["retries"] == 1  # one retry, then terminal
        assert report["outcome_error"] == 1
        broker.shutdown()

    def test_non_retryable_class_fails_terminally(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(error_rate=1.0, roots=(root,),
                            max_faulty_attempts=1),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                              retry_on=("timeout",)),
        )
        with pytest.raises(InjectedFault):
            broker.query(root)
        assert broker.report()["retries"] == 0
        broker.shutdown()

    def test_drain_waits_for_inflight_retries(self, rmat1_small):
        # Satellite: drain must account for requests being retried —
        # a future is never leaked even when its retry is mid-backoff.
        root = int(choose_root(rmat1_small, seed=3))
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=1, flush_interval_s=0.001,
            chaos=ChaosPlan(error_rate=1.0, roots=(root,),
                            max_faulty_attempts=1),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05),
        )
        future = broker.submit(root)
        assert broker.drain(timeout=30.0)
        assert future.done()
        assert future.result().attempts == 2
        broker.shutdown()

    def test_abort_cancels_pending_retries(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(error_rate=1.0, roots=(root,)),
            retry=RetryPolicy(max_attempts=5, backoff_base_s=10.0),
        )
        future = broker.submit(root)
        broker.process_once(block=True)  # attempt 0 fails; retry backoff 10s
        assert not future.done()
        broker.shutdown(drain=False)
        with pytest.raises((ServiceShutdown, InjectedFault)):
            future.result(timeout=1.0)
        broker.shutdown()


class TestVerification:
    def test_corrupt_solve_is_caught_and_retried(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            verify="structural",
            chaos=ChaosPlan(events=(ChaosEvent(root, 0, "corrupt"),)),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
        )
        res = broker.query(root)
        assert res.attempts == 2
        offline = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, offline.distances)
        broker.shutdown()

    def test_corrupt_without_retry_is_typed_terminal(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            verify="structural",
            chaos=ChaosPlan(error_rate=0.0,
                            events=(ChaosEvent(root, 0, "corrupt"),)),
        )
        with pytest.raises(SolveCorrupted) as info:
            broker.query(root)
        assert info.value.root == root
        assert broker.report()["outcome_corrupt"] == 1
        # the corrupted answer never reached the cache
        assert root not in broker.cache
        broker.shutdown()


class TestBreakerLadder:
    def open_breaker(self, graph, bad, **broker_kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, recovery_time_s=1.0,
                          **broker_kwargs.pop("breaker_kwargs", {})),
            clock=clock,
        )
        broker = manual_broker(
            graph,
            breaker=breaker,
            chaos=ChaosPlan(error_rate=1.0, roots=(bad,)),
            **broker_kwargs,
        )
        return broker, breaker, clock

    def test_breaker_opens_and_flags_stale_cache_hits(self, rmat1_small):
        bad, good = (int(r) for r in choose_roots(rmat1_small, 2, seed=3))
        broker, breaker, _ = self.open_breaker(rmat1_small, bad)
        fresh = broker.query(good)  # cache fill while healthy
        assert not fresh.stale_ok
        with pytest.raises(InjectedFault):
            broker.query(bad)  # threshold 1: opens the "error" class
        assert breaker.state_of("error") == "open"
        stale = broker.query(good)
        assert stale.cached
        assert stale.stale_ok  # flagged: served while degraded
        broker.shutdown()

    def test_breaker_open_degrades_to_bounded_exact(self, rmat1_small):
        bad, cold = (int(r) for r in choose_roots(rmat1_small, 2, seed=4))
        broker, breaker, _ = self.open_breaker(rmat1_small, bad)
        with pytest.raises(InjectedFault):
            broker.query(bad)
        res = broker.query(cold)  # no cache entry: bounded-exact fallback
        assert res.degraded
        assert res.source == "degraded"
        offline = solve_sssp(rmat1_small, cold, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        # degrade-to-Bellman-Ford is exact: distances still bit-identical
        assert np.array_equal(res.distances, offline.distances)
        assert broker.report()["outcome_degraded"] == 1
        broker.shutdown()

    def test_breaker_open_sheds_large_graph_typed(self, rmat1_small):
        bad, cold = (int(r) for r in choose_roots(rmat1_small, 2, seed=4))
        broker, breaker, _ = self.open_breaker(
            rmat1_small, bad,
            breaker_kwargs={"degrade_max_vertices": 0},  # fallback never fits
        )
        with pytest.raises(InjectedFault):
            broker.query(bad)
        with pytest.raises(ServiceUnavailable) as info:
            broker.query(cold)
        assert info.value.open_classes == ("error",)
        assert broker.report()["outcome_unavailable"] == 1
        broker.shutdown()

    def test_half_open_probe_success_recloses(self, rmat1_small):
        bad, cold = (int(r) for r in choose_roots(rmat1_small, 2, seed=4))
        broker, breaker, clock = self.open_breaker(rmat1_small, bad)
        with pytest.raises(InjectedFault):
            broker.query(bad)
        clock.t = 2.0  # past recovery_time_s: half-open
        res = broker.query(cold)  # the probe solve, clean root
        assert not res.degraded  # probes run the primary path
        assert breaker.state_of("error") == "closed"
        assert not breaker.degraded
        broker.shutdown()


class TestNegativeCaching:
    def test_timed_out_root_fast_fails_within_ttl(self, rmat1_small):
        broker = manual_broker(
            rmat1_small, algorithm="delta", delta=1, negative_ttl_s=60.0
        )
        root = int(choose_root(rmat1_small, seed=3))
        with pytest.raises(SolveTimeout):
            broker.query(root, deadline=DeadlineConfig(max_supersteps=2))
        solves_before = broker.report()["solves"]
        with pytest.raises(SolveTimeout, match="negative-cached"):
            broker.query(root)  # fast-fail: no engine work burned
        report = broker.report()
        assert report["solves"] == solves_before
        assert report["negative_hits"] == 1
        assert report["outcome_timeout"] == 2
        broker.shutdown()


class TestHedging:
    def test_hedge_rescues_straggling_attempt(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(events=(ChaosEvent(root, 0, "slow"),),
                            slow_s=0.5),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                              hedge_after_s=0.01, hedge_budget=4),
        )
        t0 = __import__("time").perf_counter()
        res = broker.query(root)
        elapsed = __import__("time").perf_counter() - t0
        offline = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, offline.distances)
        assert broker.report()["hedges"] == 1
        assert elapsed < 0.5  # the hedge returned before the straggler
        broker.shutdown()

    def test_hedge_budget_exhausted_waits_for_primary(self, rmat1_small):
        root = int(choose_root(rmat1_small, seed=3))
        broker = manual_broker(
            rmat1_small,
            chaos=ChaosPlan(events=(ChaosEvent(root, 0, "slow"),),
                            slow_s=0.05),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0,
                              hedge_after_s=0.01, hedge_budget=0),
        )
        res = broker.query(root)  # no budget: primary finishes on its own
        assert broker.report()["hedges"] == 0
        assert res.attempts == 1
        broker.shutdown()
