"""Multi-window SLO burn-rate monitoring for the serving plane (DESIGN.md §14).

:class:`~repro.serve.slo.SloPolicy` renders an end-of-run pass/fail
verdict; operating a service needs the *leading* signal — how fast is
the error budget burning **right now**? This module implements the
standard multi-window, multi-burn-rate alerting shape (Google SRE
workbook ch. 5) over the broker's timestamped
:class:`~repro.serve.slo.LatencyWindow`:

- **burn rate** = (bad fraction in a window) / (error budget), where the
  error budget is ``1 - objective`` — burn 1.0 means "exactly on budget",
  burn 14.4 over an hour means "a 30-day budget gone in ~2 days";
- a **fast** window (high threshold → page: the budget is burning so
  fast a human must look now) and a **slow** window (lower threshold →
  ticket: sustained slow burn that will exhaust the budget);
- each window is paired with a **companion** window 1/12 its size that
  must *also* be over threshold, so an alert clears promptly once the
  burn actually stops (the long window alone would keep alerting on
  stale badness).

A sample is *bad* when its outcome source is not in ``ok_sources``
(sheds, timeouts, errors, refusals) or — when ``latency_slo_s`` is set —
when a good outcome exceeded the latency SLO (slow successes burn
budget too). Read-side only: the monitor owns no state beyond its
config; every evaluation re-reads the window, so it costs nothing
unless called.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BurnAlert", "BurnRateConfig", "BurnRateMonitor", "OK_SOURCES"]

#: Outcome sources that do not burn error budget. Everything else
#: (timeout, error, corrupt, unavailable, cancelled, ...) is budget spend.
OK_SOURCES: tuple[str, ...] = ("cache", "solve", "coalesced", "degraded")

#: Companion window = window / COMPANION_DIVISOR (the SRE-workbook 1/12).
COMPANION_DIVISOR = 12.0


@dataclass(frozen=True)
class BurnRateConfig:
    """Objective, windows and thresholds of the burn-rate monitor.

    Defaults follow the SRE-workbook table scaled to bench-length runs:
    a 60 s fast window at burn 14.4 (page) and a 300 s slow window at
    burn 6.0 (ticket). ``latency_slo_s`` (optional) additionally counts
    good-but-slow requests as budget spend. ``min_samples`` suppresses
    verdicts from windows too thin to mean anything.
    """

    objective: float = 0.99
    latency_slo_s: float | None = None
    fast_window_s: float = 60.0
    fast_threshold: float = 14.4
    slow_window_s: float = 300.0
    slow_threshold: float = 6.0
    min_samples: int = 10
    ok_sources: tuple[str, ...] = OK_SOURCES

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("windows must be positive")
        if self.fast_threshold <= 0 or self.slow_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnAlert:
    """One firing burn-rate alert.

    ``severity`` is ``"page"`` (fast window) or ``"ticket"`` (slow
    window); ``burn`` / ``companion_burn`` are the observed rates in the
    window and its 1/12 companion, both over ``threshold``.
    """

    severity: str
    window_s: float
    burn: float
    companion_burn: float
    threshold: float
    bad: int
    total: int

    def describe(self) -> str:
        return (
            f"[{self.severity}] burn {self.burn:.1f}x over {self.window_s:.0f}s "
            f"window (companion {self.companion_burn:.1f}x, "
            f"threshold {self.threshold:.1f}x, {self.bad}/{self.total} bad)"
        )


@dataclass
class BurnRateMonitor:
    """Evaluate multi-window burn rates over a :class:`LatencyWindow`.

    The window's samples are keyed by outcome source (the broker records
    every terminal outcome under its name), so classification is pure
    read-side: no broker hook is needed and arming the monitor cannot
    perturb the serving path.
    """

    window: object  # LatencyWindow (duck-typed: .recent(window_s, now=))
    config: BurnRateConfig = field(default_factory=BurnRateConfig)

    def _classify(self, rows) -> tuple[int, int]:
        """(bad, total) over ``(source, t, latency)`` rows."""
        cfg = self.config
        bad = 0
        total = 0
        for source, _t, latency in rows:
            total += 1
            if source not in cfg.ok_sources:
                bad += 1
            elif cfg.latency_slo_s is not None and latency > cfg.latency_slo_s:
                bad += 1
        return bad, total

    def burn_rate(
        self, window_s: float, *, now: float | None = None
    ) -> tuple[float, int, int]:
        """``(burn, bad, total)`` over the trailing ``window_s`` seconds.

        ``burn`` is NaN when the window holds fewer than ``min_samples``
        samples (too thin to judge).
        """
        bad, total = self._classify(self.window.recent(window_s, now=now))
        if total < self.config.min_samples:
            return float("nan"), bad, total
        return (bad / total) / self.config.error_budget, bad, total

    def evaluate(self, *, now: float | None = None) -> list[BurnAlert]:
        """Firing alerts, page before ticket (empty = budget healthy).

        Each severity fires only when the main window *and* its 1/12
        companion are both over threshold — the companion makes alerts
        clear promptly once the burn stops.
        """
        alerts: list[BurnAlert] = []
        for severity, window_s, threshold in (
            ("page", self.config.fast_window_s, self.config.fast_threshold),
            ("ticket", self.config.slow_window_s, self.config.slow_threshold),
        ):
            burn, bad, total = self.burn_rate(window_s, now=now)
            if not burn > threshold:  # NaN-safe: thin windows never fire
                continue
            companion, _, _ = self.burn_rate(
                window_s / COMPANION_DIVISOR, now=now
            )
            if companion > threshold:
                alerts.append(
                    BurnAlert(
                        severity=severity,
                        window_s=window_s,
                        burn=burn,
                        companion_burn=companion,
                        threshold=threshold,
                        bad=bad,
                        total=total,
                    )
                )
        return alerts

    def summary(self, *, now: float | None = None) -> dict:
        """Flat burn-rate row for reports and the dashboard."""
        fast, fast_bad, fast_total = self.burn_rate(
            self.config.fast_window_s, now=now
        )
        slow, slow_bad, slow_total = self.burn_rate(
            self.config.slow_window_s, now=now
        )
        alerts = self.evaluate(now=now)
        return {
            "objective": self.config.objective,
            "burn_fast": fast,
            "burn_fast_bad": fast_bad,
            "burn_fast_total": fast_total,
            "burn_slow": slow,
            "burn_slow_bad": slow_bad,
            "burn_slow_total": slow_total,
            "alerts": [a.describe() for a in alerts],
            "paging": any(a.severity == "page" for a in alerts),
        }
