"""Request/response types of the query service (DESIGN.md §11).

A query enters the broker as a :class:`QueryRequest` (one root, optional
path targets, optional per-request deadline), travels through the
micro-batcher as-is, and resolves into a :class:`QueryResult` via a
:class:`QueryFuture` the submitter holds. Rejections are *typed*: a full
queue sheds with :class:`ServiceOverload` (the caller can back off and
retry), a closed broker refuses with :class:`ServiceShutdown`, and a
deadline trip surfaces the engine's own
:class:`~repro.runtime.watchdog.SolveTimeout` through the future.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ServiceOverload",
    "ServiceShutdown",
    "QueryRequest",
    "QueryResult",
    "QueryFuture",
]


class ServiceOverload(RuntimeError):
    """The bounded request queue is at capacity; the request was shed.

    Carries the observed ``depth`` and configured ``capacity`` so callers
    (and tests) can reason about the rejection. Shedding at admission is
    the overload policy: the queue never grows past its bound, so queued
    requests keep their latency budget instead of collapsing together.
    """

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"request queue at capacity ({depth}/{capacity}); request shed"
        )
        self.depth = depth
        self.capacity = capacity


class ServiceShutdown(RuntimeError):
    """The broker is shut down (or shutting down) and takes no new work."""


@dataclass
class QueryRequest:
    """One admitted query: a root, optional path targets, a deadline.

    ``submitted_at`` is the broker-clock admission timestamp (seconds);
    request latency is measured from it. ``deadline`` is the per-request
    :class:`~repro.runtime.watchdog.DeadlineConfig` forwarded to the
    engine's watchdog — requests with different deadlines are never
    coalesced into one solve, so a strict budget cannot fail a lax one.
    """

    root: int
    targets: tuple[int, ...] = ()
    deadline: Any = None
    submitted_at: float = 0.0
    future: "QueryFuture" = field(default_factory=lambda: QueryFuture())

    @property
    def coalesce_key(self) -> tuple:
        """Requests sharing this key are served by one solve."""
        return (self.root, self.deadline)


@dataclass
class QueryResult:
    """The answer to one query.

    ``distances`` is the full distance array from ``root`` (read-only; on
    a cache hit it *is* the cached array — bit-identical to a fresh
    solve). ``paths`` maps each requested target to its vertex sequence
    (root..target inclusive; ``None`` for unreachable targets), extracted
    deterministically from the distances. ``source`` records how the
    answer was produced: ``"cache"``, ``"solve"`` (fresh member of a
    batch) or ``"coalesced"`` (shared another request's solve in the same
    batch). ``sssp`` is the full :class:`~repro.core.solver.SsspResult`
    for fresh solves, ``None`` for cache hits (the cache stores only
    distances, by byte budget).
    """

    root: int
    distances: np.ndarray
    source: str
    latency_s: float
    batch_id: int | None = None
    paths: dict[int, list[int] | None] = field(default_factory=dict)
    sssp: Any = None

    @property
    def cached(self) -> bool:
        return self.source == "cache"

    def distance_to(self, vertex: int) -> int:
        """Distance to one vertex (``INF`` when unreachable)."""
        return int(self.distances[int(vertex)])


class QueryFuture:
    """Completion handle for one submitted query.

    A tiny thread-safe future (no executor dependency): exactly one of
    :meth:`set_result` / :meth:`set_error` is called by the broker;
    :meth:`result` blocks the submitter until then. ``add_done_callback``
    is invoked inline on completion (used by closed-loop workload
    clients).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result: QueryResult) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already completed")
            self._result = result
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_error(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already completed")
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, callback) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def exception(self) -> BaseException | None:
        """The stored error, or None (does not block; None if pending)."""
        return self._error

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until completed; re-raise the stored error if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result
