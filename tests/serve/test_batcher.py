"""Unit tests for the micro-batcher's flush and admission policy.

The clock is injected so flush timing is tested without sleeping.
"""

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.request import ServiceOverload, ServiceShutdown


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make(capacity=8, max_batch_size=3, flush_interval_s=1.0):
    clock = FakeClock()
    batcher = MicroBatcher(
        capacity=capacity,
        max_batch_size=max_batch_size,
        flush_interval_s=flush_interval_s,
        clock=clock,
    )
    return batcher, clock


class TestFlushTriggers:
    def test_size_trigger(self):
        batcher, _ = make(max_batch_size=3)
        for i in range(2):
            batcher.put(i)
        assert batcher.take(block=False) is None  # below size, before interval
        batcher.put(2)
        assert batcher.take(block=False) == [0, 1, 2]

    def test_latency_trigger(self):
        batcher, clock = make(max_batch_size=8, flush_interval_s=1.0)
        batcher.put("lonely")
        clock.t = 0.5
        assert batcher.take(block=False) is None
        clock.t = 1.0  # the oldest request has now waited the full interval
        assert batcher.take(block=False) == ["lonely"]

    def test_fifo_and_batch_bound(self):
        batcher, clock = make(max_batch_size=3, flush_interval_s=1.0)
        for i in range(5):
            batcher.put(i)
        assert batcher.take(block=False) == [0, 1, 2]
        clock.t = 1.0
        assert batcher.take(block=False) == [3, 4]
        assert batcher.depth == 0

    def test_zero_interval_flushes_immediately(self):
        batcher, _ = make(max_batch_size=8, flush_interval_s=0.0)
        batcher.put("x")
        assert batcher.take(block=False) == ["x"]


class TestAdmission:
    def test_put_returns_depth(self):
        batcher, _ = make()
        assert batcher.put("a") == 1
        assert batcher.put("b") == 2
        assert len(batcher) == 2

    def test_overload_at_capacity(self):
        batcher, _ = make(capacity=2)
        batcher.put("a")
        batcher.put("b")
        with pytest.raises(ServiceOverload) as info:
            batcher.put("c")
        assert info.value.depth == 2
        assert info.value.capacity == 2
        assert batcher.depth == 2  # the queue never grows past its bound

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(capacity=0, max_batch_size=1, flush_interval_s=0)
        with pytest.raises(ValueError):
            MicroBatcher(capacity=1, max_batch_size=0, flush_interval_s=0)
        with pytest.raises(ValueError):
            MicroBatcher(capacity=1, max_batch_size=1, flush_interval_s=-1)


class TestShutdown:
    def test_close_refuses_new_but_drains_queued(self):
        batcher, _ = make(max_batch_size=8, flush_interval_s=60.0)
        batcher.put("a")
        batcher.put("b")
        batcher.close()
        with pytest.raises(ServiceShutdown):
            batcher.put("c")
        # a closed batcher flushes immediately regardless of triggers
        assert batcher.take(block=False) == ["a", "b"]
        assert batcher.take(block=True) is None  # closed + empty: exit signal

    def test_cancel_pending(self):
        batcher, _ = make()
        batcher.put("a")
        batcher.put("b")
        assert batcher.cancel_pending() == ["a", "b"]
        assert batcher.depth == 0

    def test_wait_empty(self):
        batcher, _ = make(flush_interval_s=0.0)
        assert batcher.wait_empty(timeout=0.01)
        batcher.put("a")
        assert not batcher.wait_empty(timeout=0.01)
        batcher.take(block=False)
        assert batcher.wait_empty(timeout=0.01)
