"""Quickstart: solve SSSP on a Graph 500-style R-MAT graph.

Generates an RMAT-1 (Graph 500 BFS parameters) graph with uniform integer
weights, runs the paper's OPT algorithm on a simulated 8-node machine, and
prints distances, execution counters and the simulated processing rate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import rmat_graph, solve_sssp
from repro.core.distances import INF
from repro.graph.roots import choose_root
from repro.util import format_table


def main() -> None:
    # 1. Build a weighted scale-13 R-MAT graph (8,192 vertices, ~16 edges
    #    per vertex, weights uniform in [1, 255]).
    graph = rmat_graph(scale=13, seed=42)
    print(f"graph: {graph}")

    # 2. Pick a Graph 500-style search key (a random non-isolated vertex).
    root = choose_root(graph, seed=0)
    print(f"root:  {root}")

    # 3. Solve with the paper's OPT algorithm (Δ-stepping + IOS + pruning +
    #    hybridization) on a simulated 8-node x 16-thread machine, and
    #    cross-check the result against sequential Dijkstra.
    result = solve_sssp(
        graph,
        root,
        algorithm="opt",
        delta=25,
        num_ranks=8,
        threads_per_rank=16,
        validate=True,
    )

    # 4. Inspect the output.
    reached = result.distances < INF
    print(f"\nreached {reached.sum()} of {graph.num_vertices} vertices")
    print(f"max distance: {result.distances[reached].max()}")
    print(f"simulated time: {result.cost.total_time * 1e3:.3f} ms "
          f"({result.gteps:.3f} simulated GTEPS)")
    print(f"wall time (Python kernels): {result.wall_time_s * 1e3:.1f} ms")

    print("\nexecution counters:")
    print(format_table([result.metrics.summary()]))

    print("\nper-bucket decisions (push/pull pruning):")
    rows = [
        {k: s.get(k, "") for k in ("bucket", "members", "mode", "relaxations")}
        for s in result.metrics.per_bucket_stats
    ]
    print(format_table(rows))

    # 5. Compare against the classical baselines in one call each.
    print("\nbaselines on the same graph:")
    rows = []
    for algo, delta in [("dijkstra", 1), ("delta", 25), ("bellman-ford", 25)]:
        res = solve_sssp(graph, root, algorithm=algo, delta=delta,
                         num_ranks=8, threads_per_rank=16)
        rows.append({
            "algorithm": res.algorithm,
            "gteps": res.gteps,
            "relaxations": res.metrics.total_relaxations,
            "phases": res.metrics.total_phases,
        })
        assert np.array_equal(res.distances, result.distances)
    print(format_table(rows))


if __name__ == "__main__":
    main()
