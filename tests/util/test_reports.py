"""Unit tests for JSON result reports."""

import json

import pytest

from repro.apps.graph500 import run_graph500
from repro.bfs import run_bfs
from repro.core.solver import solve_sssp
from repro.util.reports import bfs_report, dump_json, graph500_report, sssp_report


@pytest.fixture(scope="module")
def sssp_result(rmat1_small):
    return solve_sssp(rmat1_small, 3, algorithm="opt", delta=25,
                      num_ranks=4, threads_per_rank=2)


class TestSsspReport:
    def test_round_trips_through_json(self, sssp_result):
        report = sssp_report(sssp_result)
        parsed = json.loads(dump_json(report))
        assert parsed == report

    def test_key_content(self, sssp_result):
        report = sssp_report(sssp_result)
        assert report["kind"] == "sssp"
        assert report["gteps"] == pytest.approx(sssp_result.gteps)
        assert report["metrics"]["relaxations"] == (
            sssp_result.metrics.total_relaxations
        )
        assert report["config"]["delta"] == 25
        assert report["machine"]["num_ranks"] == 4

    def test_no_distance_payload(self, sssp_result):
        report = sssp_report(sssp_result)
        text = dump_json(report)
        # reports stay small: no per-vertex arrays
        assert len(text) < 10_000

    def test_write_to_file(self, tmp_path, sssp_result):
        path = tmp_path / "report.json"
        dump_json(sssp_report(sssp_result), path)
        parsed = json.loads(path.read_text())
        assert parsed["kind"] == "sssp"


class TestBfsReport:
    def test_content(self, rmat1_small):
        res = run_bfs(rmat1_small, 3, num_ranks=2, threads_per_rank=2)
        report = bfs_report(res)
        json.loads(dump_json(report))
        assert report["kind"] == "bfs"
        assert report["levels"] == res.num_levels
        assert len(report["directions"]) == res.num_levels


class TestGraph500Report:
    def test_content(self):
        res = run_graph500(8, num_roots=3, num_ranks=2, threads_per_rank=2)
        report = graph500_report(res)
        json.loads(dump_json(report))
        assert report["kind"] == "graph500-sssp"
        assert len(report["per_root"]) == 3
        assert report["hmean_gteps"] == pytest.approx(res.harmonic_mean_gteps)


class TestCliJson:
    def test_solve_json_stdout(self, capsys):
        from repro.cli import main

        rc = main(["solve", "--scale", "8", "--ranks", "2", "--threads", "2",
                   "--json", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        start = out.index("{")
        parsed = json.loads(out[start:])
        assert parsed["kind"] == "sssp"

    def test_solve_json_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "r.json"
        rc = main(["solve", "--scale", "8", "--ranks", "2", "--threads", "2",
                   "--json", str(path)])
        assert rc == 0
        assert json.loads(path.read_text())["kind"] == "sssp"
