"""Mesh-like and geometric graphs for the example applications.

The paper's introduction motivates SSSP with combinatorial-optimization
domains such as VLSI design and transportation. These generators produce
road-network-like inputs (2-D grids with perturbed weights, random geometric
graphs) that behave very differently from R-MAT graphs: near-uniform degree,
large diameter, many buckets — the regime where hybridization matters most.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph

__all__ = ["grid_graph", "random_geometric_graph"]


def grid_graph(
    rows: int,
    cols: int,
    *,
    max_weight: int = 255,
    seed: int = 0,
    diagonal: bool = False,
) -> CSRGraph:
    """A ``rows x cols`` 2-D lattice with uniform random integer weights.

    Vertex ``(r, c)`` has id ``r * cols + c``. With ``diagonal=True`` the
    lattice also includes the down-right diagonals (8-connectivity minus the
    anti-diagonal), which shortens the hop diameter like highway links do.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one row and column")
    rng = np.random.default_rng(seed)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    tails = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    heads = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    if diagonal and rows > 1 and cols > 1:
        tails.append(ids[:-1, :-1].ravel())
        heads.append(ids[1:, 1:].ravel())
    tails_arr = np.concatenate(tails)
    heads_arr = np.concatenate(heads)
    weights = rng.integers(1, max_weight + 1, size=tails_arr.size, dtype=np.int64)
    return from_undirected_edges(tails_arr, heads_arr, weights, rows * cols)


def random_geometric_graph(
    num_vertices: int,
    radius: float,
    *,
    max_weight: int = 255,
    seed: int = 0,
) -> CSRGraph:
    """Random geometric graph on the unit square with distance-derived weights.

    Vertices are uniform points in ``[0, 1]^2``; points closer than ``radius``
    are connected, with integer weight proportional to euclidean distance
    (scaled to ``[1, max_weight]``). Uses a uniform grid-bucket spatial index
    so construction is near-linear instead of O(n^2).
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = np.random.default_rng(seed)
    pts = rng.random((num_vertices, 2))
    cell = max(radius, 1e-9)
    ncell = max(1, int(np.ceil(1.0 / cell)))
    cx = np.minimum((pts[:, 0] / cell).astype(np.int64), ncell - 1)
    cy = np.minimum((pts[:, 1] / cell).astype(np.int64), ncell - 1)
    cell_id = cx * ncell + cy
    order = np.argsort(cell_id, kind="stable")
    sorted_cells = cell_id[order]
    # For each point, candidate neighbours live in the 3x3 cell neighbourhood.
    tails_list: list[np.ndarray] = []
    heads_list: list[np.ndarray] = []
    starts = np.searchsorted(sorted_cells, np.arange(ncell * ncell))
    ends = np.searchsorted(sorted_cells, np.arange(ncell * ncell), side="right")
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            nx = cx + dx
            ny = cy + dy
            valid = (nx >= 0) & (nx < ncell) & (ny >= 0) & (ny < ncell)
            if not valid.any():
                continue
            src = np.nonzero(valid)[0]
            ncid = nx[src] * ncell + ny[src]
            counts = ends[ncid] - starts[ncid]
            if counts.sum() == 0:
                continue
            rep_src = np.repeat(src, counts)
            # Build flat candidate index ranges.
            offsets = np.concatenate([np.arange(c) for c in counts if c > 0]) if counts.size else np.empty(0, np.int64)
            base = np.repeat(starts[ncid], counts)
            cand = order[base + offsets]
            keep = cand > rep_src  # each unordered pair once
            rep_src, cand = rep_src[keep], cand[keep]
            if rep_src.size == 0:
                continue
            d2 = ((pts[rep_src] - pts[cand]) ** 2).sum(axis=1)
            close = d2 <= radius * radius
            tails_list.append(rep_src[close])
            heads_list.append(cand[close])
    if tails_list:
        tails = np.concatenate(tails_list)
        heads = np.concatenate(heads_list)
        dist = np.sqrt(((pts[tails] - pts[heads]) ** 2).sum(axis=1))
        weights = np.maximum(1, (dist / radius * max_weight).astype(np.int64))
    else:
        tails = np.empty(0, dtype=np.int64)
        heads = np.empty(0, dtype=np.int64)
        weights = np.empty(0, dtype=np.int64)
    return from_undirected_edges(tails, heads, weights, num_vertices)
