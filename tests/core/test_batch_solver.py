"""Unit tests for the multi-root BatchSolver."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.reference import dijkstra_reference
from repro.core.solver import BatchSolver, solve_sssp
from repro.graph.roots import choose_roots


class TestBatchSolver:
    def test_matches_solve_sssp(self, rmat1_small):
        solver = BatchSolver(rmat1_small, algorithm="opt", delta=25,
                             num_ranks=4, threads_per_rank=2)
        for root in choose_roots(rmat1_small, 4, seed=1):
            batch = solver.solve(int(root))
            single = solve_sssp(rmat1_small, int(root), algorithm="opt",
                                delta=25, num_ranks=4, threads_per_rank=2)
            assert np.array_equal(batch.distances, single.distances)
            assert batch.metrics.summary() == single.metrics.summary()
            assert batch.gteps == pytest.approx(single.gteps)

    def test_solve_many(self, rmat1_small):
        solver = BatchSolver(rmat1_small, num_ranks=2, threads_per_rank=2)
        roots = choose_roots(rmat1_small, 3, seed=2)
        results = solver.solve_many(roots, validate=True)
        assert len(results) == 3
        assert [r.root for r in results] == [int(x) for x in roots]

    def test_solve_many_shared_trace(self, rmat1_small, tmp_path):
        from repro.obs.export import validate_trace_file
        from repro.obs.tracer import TraceConfig

        path = tmp_path / "batch.jsonl"
        solver = BatchSolver(rmat1_small, num_ranks=2, threads_per_rank=2)
        roots = [int(r) for r in choose_roots(rmat1_small, 3, seed=4)]
        results = solver.solve_many(roots, trace=TraceConfig(path=str(path)))
        assert [r.root for r in results] == roots
        fmt, problems = validate_trace_file(str(path))
        assert fmt == "jsonl"
        assert problems == []
        import json

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        root_spans = [e for e in lines
                      if e.get("type") == "span" and e.get("cat") == "root"]
        # one trace file, one root-level span per solved root
        assert [s["args"]["root"] for s in root_spans] == roots

    def test_solve_many_deadline_forwarded(self, rmat1_small):
        from repro.runtime.watchdog import DeadlineConfig, SolveTimeout

        solver = BatchSolver(rmat1_small, algorithm="delta", delta=1,
                             num_ranks=2, threads_per_rank=2)
        root = int(choose_roots(rmat1_small, 1, seed=3)[0])
        with pytest.raises(SolveTimeout):
            solver.solve_many([root],
                              deadline=DeadlineConfig(max_supersteps=2))

    def test_metrics_independent_per_root(self, rmat1_small):
        solver = BatchSolver(rmat1_small, num_ranks=2, threads_per_rank=2)
        a = solver.solve(3)
        b = solver.solve(3)
        assert a.metrics is not b.metrics
        assert a.metrics.summary() == b.metrics.summary()

    def test_with_vertex_splitting(self, rmat1_small):
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, intra_lb=True,
                           inter_split=True, split_degree=24)
        solver = BatchSolver(rmat1_small, algorithm="split", config=cfg,
                             num_ranks=4, threads_per_rank=2)
        assert solver.num_proxies > 0
        root = int(choose_roots(rmat1_small, 1, seed=3)[0])
        res = solver.solve(root, validate=True)
        assert np.array_equal(res.distances, dijkstra_reference(rmat1_small, root))
        assert res.num_edges == rmat1_small.num_undirected_edges

    def test_split_rejects_directed(self):
        from repro.graph.builder import from_edges

        g = from_edges(np.array([0]), np.array([1]), np.array([1]), 2)
        cfg = SolverConfig(delta=25, inter_split=True)
        with pytest.raises(ValueError, match="undirected"):
            BatchSolver(g, algorithm="x", config=cfg, num_ranks=2)

    def test_preprocessing_shared(self, rmat1_small):
        # the work graph is sorted once; per-root solves reuse the object
        solver = BatchSolver(rmat1_small, num_ranks=2, threads_per_rank=2)
        g1 = solver._work_graph
        solver.solve(3)
        assert solver._work_graph is g1

    def test_faster_than_repeated_solves_on_unsorted_graph(self, rmat2_small):
        import time

        roots = [int(r) for r in choose_roots(rmat2_small, 4, seed=5)]
        t0 = time.perf_counter()
        solver = BatchSolver(rmat2_small, num_ranks=2, threads_per_rank=2)
        solver.solve_many(roots)
        batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        for r in roots:
            solve_sssp(rmat2_small, r, num_ranks=2, threads_per_rank=2)
        repeated = time.perf_counter() - t0
        # only a smoke check: batched must not be slower by a wide margin
        assert batched < repeated * 1.5
