"""Fig. 1 — Performance comparison table.

The paper's Fig. 1 lists published BFS/SSSP processing rates and the two
SSSP rows this paper contributes (650 GTEPS on 4,096 nodes, 3,100 GTEPS on
32,768 nodes, RMAT-1). We regenerate the *our-system* rows on the simulated
machine across its weak-scaling range and print them next to the paper's
reference rows. Absolute rates differ (simulated laptop vs Blue Gene/Q);
the reproduction claim is the scaling trend of the SSSP rows.
"""

from __future__ import annotations

import functools

import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    RMAT1,
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)

PAPER_ROWS = [
    {"source": "Madduri et al. [13]", "problem": "SSSP", "system": "Cray MTA-2 (40)",
     "scale": 28, "gteps": 0.1},
    {"source": "this paper", "problem": "SSSP", "system": "BG/Q 4,096 nodes",
     "scale": 35, "gteps": 650},
    {"source": "this paper", "problem": "SSSP", "system": "BG/Q 32,768 nodes",
     "scale": 38, "gteps": 3100},
]

NODE_COUNTS = (4, 16, 64)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat1")
        root = choose_root(graph, seed=0)
        res = run_algorithm(graph, root, "lb-opt", 25, default_machine(nodes))
        rows.append(
            {
                "source": "repro (simulated)",
                "problem": "SSSP",
                "system": f"sim {nodes} nodes",
                "scale": scale,
                "gteps": res.gteps,
            }
        )
    return rows


def test_fig01_comparison_table(benchmark):
    graph = cached_rmat(VERTICES_PER_RANK_LOG2 + 2, "rmat1")
    root = choose_root(graph, seed=0)
    benchmark(
        lambda: run_algorithm(graph, root, "lb-opt", 25, default_machine(4))
    )
    rows = compute_rows()
    print_table(PAPER_ROWS + rows, "Fig. 1 — performance comparison (paper rows + simulated rows)")
    # Scaling trend: simulated GTEPS grows with node count, as in the paper.
    gteps = [r["gteps"] for r in rows]
    assert gteps[-1] > gteps[0]


if __name__ == "__main__":
    print_table(PAPER_ROWS + compute_rows(), "Fig. 1 — performance comparison")
