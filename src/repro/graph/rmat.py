"""R-MAT / Graph 500 graph generator (Chakrabarti, Zhan, Faloutsos 2004).

The paper evaluates on two R-MAT families (Section IV-B):

- **RMAT-1** — the Graph 500 BFS benchmark parameters
  ``A = 0.57, B = C = 0.19, D = 0.05``. Heavy degree skew: the maximum
  degree grows into the millions at large scale (paper Fig. 8).
- **RMAT-2** — the (proposed) Graph 500 SSSP benchmark parameters
  ``A = 0.50, B = C = 0.10, D = 0.30``. Milder skew, shortest distances
  spread over a wider range.

Both use *edge factor* 16: ``m = 16 * N`` undirected edges for ``N = 2^scale``
vertices. Edge weights are assigned separately (:mod:`repro.graph.weights`),
uniform integers in ``[0, 255]`` per the SSSP benchmark proposal; we clamp to
a minimum of 1 so that all weights are positive as required in Section II.

The generator is fully vectorised: one pass per scale level over the whole
edge batch, drawing quadrant choices for every edge simultaneously. Vertex
ids are scrambled with a fixed permutation (as Graph 500 requires) so that
block partitions do not align with R-MAT locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_weights

__all__ = ["RMATParams", "RMAT1", "RMAT2", "rmat_edges", "rmat_graph"]

EDGE_FACTOR = 16
"""Graph 500 edge factor: number of undirected edges per vertex."""


@dataclass(frozen=True)
class RMATParams:
    """The four R-MAT quadrant probabilities.

    ``a`` is the probability of recursing into the top-left quadrant (both
    endpoint bits 0), ``b`` top-right, ``c`` bottom-left, ``d`` bottom-right.
    They must sum to 1.
    """

    a: float
    b: float
    c: float
    d: float
    name: str = "custom"

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"R-MAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("R-MAT probabilities must be non-negative")

    @property
    def skew(self) -> float:
        """Deviation of ``a`` from the uniform value 1/4 (a rough skew proxy)."""
        return self.a - 0.25


RMAT1 = RMATParams(a=0.57, b=0.19, c=0.19, d=0.05, name="RMAT-1")
"""Graph 500 BFS benchmark parameters (paper's RMAT-1 family)."""

RMAT2 = RMATParams(a=0.50, b=0.10, c=0.10, d=0.30, name="RMAT-2")
"""Proposed Graph 500 SSSP benchmark parameters (paper's RMAT-2 family)."""


def _scramble(ids: np.ndarray, scale: int, rng: np.random.Generator) -> np.ndarray:
    """Apply a fixed pseudo-random vertex permutation.

    Graph 500 scrambles vertex labels so that the low-id vertices produced by
    the recursive process (which concentrate the high degrees) are spread
    across the id space — and hence across block partitions.
    """
    n = 1 << scale
    perm = rng.permutation(n)
    return perm[ids]


def rmat_edges(
    scale: int,
    edge_factor: int = EDGE_FACTOR,
    params: RMATParams = RMAT1,
    *,
    seed: int = 0,
    scramble: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the (tails, heads) arrays of an R-MAT edge list.

    Parameters
    ----------
    scale:
        ``log2`` of the number of vertices.
    edge_factor:
        Undirected edges per vertex (Graph 500 uses 16).
    params:
        Quadrant probabilities (:data:`RMAT1` or :data:`RMAT2`).
    seed:
        Seed for the :class:`numpy.random.Generator` driving the process.
    scramble:
        Apply the Graph 500 vertex-label scramble.

    Returns
    -------
    (tails, heads):
        ``int64`` arrays of length ``edge_factor << scale``. Self-loops and
        duplicates are *not* removed here (the CSR builder handles that),
        matching the raw Graph 500 edge stream semantics.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    rng = np.random.default_rng(seed)
    num_edges = edge_factor << scale
    tails = np.zeros(num_edges, dtype=np.int64)
    heads = np.zeros(num_edges, dtype=np.int64)
    # Quadrant thresholds for a single uniform draw per (edge, level):
    #   [0, a)           -> (0, 0)
    #   [a, a+b)         -> (0, 1)
    #   [a+b, a+b+c)     -> (1, 0)
    #   [a+b+c, 1)       -> (1, 1)
    t1 = params.a
    t2 = params.a + params.b
    t3 = params.a + params.b + params.c
    for level in range(scale):
        u = rng.random(num_edges)
        head_bit = (u >= t1) & (u < t2) | (u >= t3)
        tail_bit = u >= t2
        tails |= tail_bit.astype(np.int64) << level
        heads |= head_bit.astype(np.int64) << level
    if scramble and scale > 0:
        perm_rng = np.random.default_rng((seed << 1) ^ 0x5851F42D)
        tails = _scramble(tails, scale, perm_rng)
        perm_rng = np.random.default_rng((seed << 1) ^ 0x5851F42D)
        heads = _scramble(heads, scale, perm_rng)
    return tails, heads


def rmat_graph(
    scale: int,
    edge_factor: int = EDGE_FACTOR,
    params: RMATParams = RMAT1,
    *,
    seed: int = 0,
    max_weight: int = 255,
    scramble: bool = True,
) -> CSRGraph:
    """Generate a weighted, symmetrized R-MAT graph.

    Weights are uniform integers in ``[1, max_weight]`` (the benchmark says
    ``[0, 255]``; zero weights are clamped to 1 to satisfy the strictly
    positive weight requirement of Section II).
    """
    tails, heads = rmat_edges(
        scale, edge_factor, params, seed=seed, scramble=scramble
    )
    weights = uniform_weights(tails.size, max_weight=max_weight, seed=seed + 1)
    return from_undirected_edges(tails, heads, weights, num_vertices=1 << scale)
