"""Unit tests for direction-optimizing BFS."""

import numpy as np
import pytest

from repro.bfs import run_bfs
from repro.bfs.engine import UNVISITED
from repro.graph.builder import from_undirected_edges
from repro.graph.rmat import rmat_graph
from repro.graph.roots import choose_root


def hop_reference(graph, root):
    """Plain queue BFS for cross-checking."""
    from collections import deque

    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[root] = 0
    q = deque([root])
    while q:
        u = q.popleft()
        for v in graph.neighbors(u):
            if levels[v] == -1:
                levels[v] = levels[u] + 1
                q.append(int(v))
    return levels


class TestCorrectness:
    @pytest.mark.parametrize("direction", ["auto", "top-down", "bottom-up"])
    def test_levels_match_reference(self, rmat1_small, direction):
        root = choose_root(rmat1_small, seed=0)
        res = run_bfs(rmat1_small, root, direction=direction,
                      num_ranks=4, threads_per_rank=4)
        assert np.array_equal(res.levels, hop_reference(rmat1_small, root))

    def test_path_graph_levels(self, path_graph):
        res = run_bfs(path_graph, 0, num_ranks=2, threads_per_rank=2)
        assert list(res.levels) == [0, 1, 2, 3, 4]

    def test_disconnected(self, disconnected_graph):
        res = run_bfs(disconnected_graph, 0, num_ranks=2, threads_per_rank=2)
        assert res.levels[1] == 1
        assert res.levels[2] == UNVISITED
        assert res.num_reached == 2

    def test_parent_tree_consistent(self, rmat1_small):
        root = choose_root(rmat1_small, seed=1)
        res = run_bfs(rmat1_small, root, num_ranks=4, threads_per_rank=4)
        assert res.parent[root] == UNVISITED
        for v in np.nonzero(res.levels > 0)[0]:
            p = int(res.parent[v])
            assert res.levels[p] == res.levels[v] - 1
            assert v in rmat1_small.neighbors(p)

    def test_star_graph_one_level(self, star_graph):
        res = run_bfs(star_graph, 0, num_ranks=2, threads_per_rank=2)
        assert res.num_levels == 2  # expansion level + empty-check level
        assert np.all(res.levels[1:] == 1)

    def test_invalid_root(self, path_graph):
        with pytest.raises(ValueError):
            run_bfs(path_graph, 99)

    def test_invalid_direction(self, path_graph):
        with pytest.raises(ValueError, match="direction"):
            run_bfs(path_graph, 0, direction="sideways")


class TestDirectionOptimization:
    def test_auto_switches_on_rmat(self):
        g = rmat_graph(scale=11, seed=4)
        root = choose_root(g, seed=0)
        res = run_bfs(g, root, num_ranks=4, threads_per_rank=4)
        dirs = set(res.direction_per_level)
        assert "top-down" in dirs and "bottom-up" in dirs

    def test_auto_examines_fewer_edges_than_top_down(self):
        g = rmat_graph(scale=11, seed=4)
        root = choose_root(g, seed=0)
        auto = run_bfs(g, root, direction="auto", num_ranks=4, threads_per_rank=4)
        td = run_bfs(g, root, direction="top-down", num_ranks=4, threads_per_rank=4)
        assert auto.metrics.total_relaxations < td.metrics.total_relaxations

    def test_top_down_relaxes_frontier_arcs_exactly(self, rmat1_small):
        root = choose_root(rmat1_small, seed=0)
        res = run_bfs(rmat1_small, root, direction="top-down",
                      num_ranks=2, threads_per_rank=2)
        reached = res.levels >= 0
        expected = int(rmat1_small.degrees[reached].sum())
        assert res.metrics.total_relaxations == expected

    def test_forced_modes_report_uniform_directions(self, rmat1_small):
        root = choose_root(rmat1_small, seed=0)
        for direction in ("top-down", "bottom-up"):
            res = run_bfs(rmat1_small, root, direction=direction,
                          num_ranks=2, threads_per_rank=2)
            assert set(res.direction_per_level) == {direction}


class TestAccounting:
    def test_gteps_positive(self, rmat1_small):
        res = run_bfs(rmat1_small, choose_root(rmat1_small, seed=0),
                      num_ranks=4, threads_per_rank=4)
        assert res.gteps > 0
        assert res.cost.total_time > 0

    def test_bottom_up_pays_bitmap_broadcast(self, rmat1_small):
        root = choose_root(rmat1_small, seed=0)
        td = run_bfs(rmat1_small, root, direction="top-down",
                     num_ranks=4, threads_per_rank=4)
        bu = run_bfs(rmat1_small, root, direction="bottom-up",
                     num_ranks=4, threads_per_rank=4)
        # bottom-up moves bitmap bytes every level
        assert bu.metrics.total_bytes > 0
        # single-rank run: no bitmap traffic at all
        solo = run_bfs(rmat1_small, root, direction="bottom-up",
                       num_ranks=1, threads_per_rank=4)
        assert solo.metrics.total_bytes == 0

    def test_faster_than_sssp_but_same_ballpark(self):
        """The paper's Fig. 1 observation: SSSP within 2-5x of BFS."""
        from repro.core.solver import solve_sssp

        g = rmat_graph(scale=12, seed=1)
        root = choose_root(g, seed=0)
        machine_kwargs = dict(num_ranks=8, threads_per_rank=16)
        bfs = run_bfs(g, root, **machine_kwargs)
        sssp = solve_sssp(g, root, algorithm="lb-opt", delta=25, **machine_kwargs)
        ratio = bfs.gteps / sssp.gteps
        assert 1.5 < ratio < 8.0
