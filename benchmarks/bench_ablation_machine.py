"""Ablation — sensitivity of the algorithm ranking to machine constants.

The cost model's constants are calibrated, not measured; the reproduction
is only credible if the paper's conclusions do not hinge on the specific
values. This ablation re-runs the Del/Prune/OPT comparison under machines
with 10x latency, 10x lower bandwidth, and 10x slower synchronization, and
checks that the headline ranking (OPT > Del) is invariant, and that the
margins move the way the optimisations predict: expensive bandwidth or
compute favour pruning's volume/work reduction. One instructive exception
the ablation surfaces: under 10x synchronization cost, *Prune alone* can
dip below the baseline — its two decision allreduces per bucket become the
dominant cost — while OPT stays ahead because hybridization removes the
buckets (and with them the decisions) altogether.
"""

from __future__ import annotations

import functools
from dataclasses import replace

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)

BASE = default_machine(8)
MACHINES = [
    ("baseline", BASE),
    ("10x alpha", replace(BASE, alpha=BASE.alpha * 10)),
    ("10x beta", replace(BASE, beta=BASE.beta * 10)),
    (
        "10x sync",
        replace(
            BASE,
            t_allreduce_base=BASE.t_allreduce_base * 10,
            t_allreduce_log=BASE.t_allreduce_log * 10,
        ),
    ),
    ("10x compute", replace(BASE, t_relax=BASE.t_relax * 10,
                            t_request=BASE.t_request * 10)),
]


@functools.lru_cache(maxsize=1)
def compute_rows():
    graph = cached_rmat(BENCH_SCALE, "rmat1")
    root = choose_root(graph, seed=0)
    rows = []
    for label, machine in MACHINES:
        res = {
            name: run_algorithm(graph, root, preset, 25, machine)
            for name, preset in (
                ("del", "delta"), ("prune", "prune"), ("opt", "opt"),
            )
        }
        rows.append(
            {
                "machine": label,
                "del_gteps": res["del"].gteps,
                "prune_gteps": res["prune"].gteps,
                "opt_gteps": res["opt"].gteps,
                "opt_vs_del": res["opt"].gteps / res["del"].gteps,
            }
        )
    return rows


def test_ablation_machine_ranking_invariant(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Ablation — machine-constant sensitivity (RMAT-1)")
    for r in rows:
        # the headline ranking survives every constant perturbation
        assert r["opt_gteps"] > r["del_gteps"]
    by = {r["machine"]: r for r in rows}
    # Prune >= Del except when synchronization is artificially inflated,
    # where its per-bucket decision allreduces dominate (see docstring).
    for label in ("baseline", "10x alpha", "10x beta", "10x compute"):
        assert by[label]["prune_gteps"] >= by[label]["del_gteps"] * 0.95


def test_ablation_machine_margins_move_as_predicted(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    by = {r["machine"]: r for r in rows}

    def prune_margin(label):
        return by[label]["prune_gteps"] / by[label]["del_gteps"]

    # Costlier bandwidth -> pruning's volume reduction buys more.
    assert prune_margin("10x beta") > prune_margin("baseline")
    # Costlier compute -> pruning's relaxation reduction buys more.
    assert prune_margin("10x compute") > prune_margin("baseline")
    # Under costly sync, OPT holds its lead while bare Prune loses it —
    # hybridization absorbs the decision overhead by removing the buckets.
    assert by["10x sync"]["opt_gteps"] > by["10x sync"]["prune_gteps"]


if __name__ == "__main__":
    print_table(compute_rows(), "Ablation — machine constants")
