"""Fig. 8 — Maximum degree by scale for the two R-MAT families.

The paper's table shows RMAT-1 max degrees in the millions (2.4 M at scale
28 up to 14.4 M at 32) against RMAT-2's tens of thousands, the skew that
drives the load-balancing design. At reproduction scale the absolute values
shrink but the family gap and the growth-with-scale remain.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import BENCH_SCALE, cached_rmat, print_table
from repro.graph.degree import degree_stats

SCALES = tuple(range(BENCH_SCALE - 4, BENCH_SCALE + 1))

PAPER = {
    "RMAT1": {28: 2.4e6, 29: 3.8e6, 30: 5.9e6, 31: 9.4e6, 32: 14.4e6},
    "RMAT2": {28: 31126, 29: 41237, 30: 54652, 31: 72158, 32: 95482},
}


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for scale in SCALES:
        row = {"scale": scale}
        for family in ("rmat1", "rmat2"):
            stats = degree_stats(cached_rmat(scale, family))
            row[f"{family}_max_deg"] = stats.max_degree
            row[f"{family}_skew"] = round(stats.skew_ratio, 1)
        rows.append(row)
    return rows


def test_fig08_max_degree(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 8 — max degree vs scale (both families)")
    # family gap: RMAT-1 max degree exceeds RMAT-2 at every scale
    for row in rows:
        assert row["rmat1_max_deg"] > row["rmat2_max_deg"]
    # growth with scale (allowing seed noise at adjacent scales)
    assert rows[-1]["rmat1_max_deg"] > rows[0]["rmat1_max_deg"]
    assert rows[-1]["rmat2_max_deg"] > rows[0]["rmat2_max_deg"]


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 8 — max degree vs scale")
    print("\npaper values (scales 28-32):", PAPER)
