"""Unit tests for the Graph 500 SSSP benchmark protocol."""

import numpy as np
import pytest

from repro.apps.graph500 import _harmonic_mean, run_graph500


class TestHarmonicMean:
    def test_known_value(self):
        assert _harmonic_mean(np.array([1.0, 2.0])) == pytest.approx(4 / 3)

    def test_singleton(self):
        assert _harmonic_mean(np.array([5.0])) == pytest.approx(5.0)

    def test_degenerate(self):
        assert _harmonic_mean(np.array([])) == 0.0
        assert _harmonic_mean(np.array([0.0, 1.0])) == 0.0

    def test_below_arithmetic_mean(self):
        v = np.array([1.0, 3.0, 9.0])
        assert _harmonic_mean(v) < v.mean()


class TestRunGraph500:
    def test_protocol_runs_and_validates(self):
        res = run_graph500(9, num_roots=6, num_ranks=4, threads_per_rank=2,
                           seed=1)
        assert res.all_valid
        assert res.num_roots == 6
        assert len(res.per_root) == 6
        assert res.min_gteps <= res.harmonic_mean_gteps <= res.max_gteps
        assert all(r["valid"] for r in res.per_root)
        assert all(r["reached"] >= 1 for r in res.per_root)

    def test_distinct_roots(self):
        res = run_graph500(9, num_roots=6, num_ranks=2, threads_per_rank=2)
        roots = [r["root"] for r in res.per_root]
        assert len(set(roots)) == len(roots)

    def test_harmonic_mean_is_official_statistic(self):
        res = run_graph500(9, num_roots=5, num_ranks=2, threads_per_rank=2)
        teps = np.array([r["sim_gteps"] for r in res.per_root])
        assert res.harmonic_mean_gteps == pytest.approx(_harmonic_mean(teps))
        assert res.mean_gteps == pytest.approx(teps.mean())

    def test_custom_graph(self, rmat1_small):
        res = run_graph500(0, graph=rmat1_small, num_roots=4,
                           num_ranks=2, threads_per_rank=2)
        assert res.num_edges == rmat1_small.num_undirected_edges
        assert res.all_valid

    def test_algorithm_choice_respected(self):
        a = run_graph500(9, num_roots=3, algorithm="delta",
                         num_ranks=2, threads_per_rank=2, seed=4)
        b = run_graph500(9, num_roots=3, algorithm="opt",
                         num_ranks=2, threads_per_rank=2, seed=4)
        # same graph/roots, different work profile
        ra = [r["relaxations"] for r in a.per_root]
        rb = [r["relaxations"] for r in b.per_root]
        assert ra != rb

    def test_invalid_num_roots(self):
        with pytest.raises(ValueError):
            run_graph500(9, num_roots=0)

    def test_summary_keys(self):
        res = run_graph500(8, num_roots=2, num_ranks=2, threads_per_rank=2)
        assert {"scale", "m", "roots", "valid", "hmean_gteps"} <= set(
            res.summary()
        )
