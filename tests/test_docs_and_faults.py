"""Meta-tests: documentation coverage and fault detection end-to-end."""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro


def _walk_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        yield importlib.import_module(info.name)


class TestDocumentationCoverage:
    def test_every_module_has_docstring(self):
        for mod in _walk_public_modules():
            assert mod.__doc__ and mod.__doc__.strip(), f"{mod.__name__} undocumented"

    def test_every_public_callable_has_docstring(self):
        missing = []
        for mod in _walk_public_modules():
            public = getattr(mod, "__all__", None)
            if public is None:
                continue
            for name in public:
                obj = getattr(mod, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if obj.__module__ != mod.__name__:
                        continue  # re-export; documented at home
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_classes_document_their_methods(self):
        from repro.core.solver import SsspResult
        from repro.graph.csr import CSRGraph
        from repro.runtime.metrics import Metrics

        for cls in (CSRGraph, Metrics, SsspResult):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


class TestFaultInjection:
    """End-to-end: the structural validator catches simulated runtime faults."""

    def _solve_with_lost_messages(self, graph, root, loss_seed):
        """Run the SPMD engine but drop a fraction of delivered records —
        a lossy network no BSP implementation should survive silently."""
        from repro.runtime.machine import MachineConfig
        from repro.spmd import mailbox as mailbox_mod
        from repro.spmd.engine import spmd_delta_stepping

        rng = np.random.default_rng(loss_seed)
        original = mailbox_mod.Mailbox.deliver

        def lossy_deliver(self, record_bytes, *, phase_kind="other", num_columns=2):
            inboxes = original(self, record_bytes, phase_kind=phase_kind,
                               num_columns=num_columns)
            damaged = []
            for cols in inboxes:
                if cols[0].size:
                    keep = rng.random(cols[0].size) > 0.3
                    damaged.append(tuple(c[keep] for c in cols))
                else:
                    damaged.append(cols)
            return damaged

        mailbox_mod.Mailbox.deliver = lossy_deliver
        try:
            machine = MachineConfig(num_ranks=4, threads_per_rank=2)
            d, _ = spmd_delta_stepping(graph, root, machine, delta=25)
        finally:
            mailbox_mod.Mailbox.deliver = original
        return d

    def test_validator_detects_message_loss(self, rmat1_small):
        from repro.core.reference import dijkstra_reference
        from repro.core.validation import validate_sssp_structure

        detected = 0
        trials = 5
        ref = dijkstra_reference(rmat1_small, 3)
        for seed in range(trials):
            d = self._solve_with_lost_messages(rmat1_small, 3, seed)
            if np.array_equal(d, ref):
                # message loss happened to be masked by retries of the
                # BSP loop; nothing to detect
                detected += 1
                continue
            report = validate_sssp_structure(rmat1_small, 3, d)
            detected += not report.valid
        assert detected == trials

    def test_lossless_run_still_validates(self, rmat1_small):
        from repro.core.validation import validate_sssp_structure
        from repro.runtime.machine import MachineConfig
        from repro.spmd.engine import spmd_delta_stepping

        machine = MachineConfig(num_ranks=4, threads_per_rank=2)
        d, _ = spmd_delta_stepping(rmat1_small, 3, machine, delta=25)
        assert validate_sssp_structure(rmat1_small, 3, d).valid
