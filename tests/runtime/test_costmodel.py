"""Unit tests for the analytic cost model."""

import numpy as np
import pytest

from repro.runtime.costmodel import evaluate_cost, simulated_gteps
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics


def machine():
    return MachineConfig(
        num_ranks=4,
        threads_per_rank=2,
        t_relax=1e-6,
        t_request=2e-6,
        t_scan=1e-7,
        alpha=1e-5,
        beta=1e-9,
        t_allreduce_base=1e-5,
        t_allreduce_log=1e-6,
    )


def metrics():
    return Metrics(num_ranks=4, threads_per_rank=2)


class TestEvaluateCost:
    def test_empty_run_is_free(self):
        cost = evaluate_cost(metrics(), machine())
        assert cost.total_time == 0.0

    def test_compute_record_priced_by_kind(self):
        m = metrics()
        tw = np.zeros(8)
        tw[0] = 10
        m.add_compute(ComputeKind.SHORT_RELAX, tw, phase_kind="short")
        cost = evaluate_cost(m, machine())
        assert cost.compute_time == pytest.approx(10 * 1e-6)
        assert cost.other_time == pytest.approx(10 * 1e-6)
        assert cost.bucket_time == 0.0

    def test_request_kind_uses_t_request(self):
        m = metrics()
        tw = np.zeros(8)
        tw[0] = 10
        m.add_compute(ComputeKind.PULL_REQUEST, tw, phase_kind="long")
        assert evaluate_cost(m, machine()).compute_time == pytest.approx(10 * 2e-6)

    def test_scan_goes_to_bucket_time(self):
        m = metrics()
        tw = np.ones(8)
        m.add_compute(ComputeKind.BUCKET_SCAN, tw, phase_kind="bucket")
        cost = evaluate_cost(m, machine())
        assert cost.bucket_time > 0
        assert cost.other_time == 0.0

    def test_exchange_alpha_beta(self):
        m = metrics()
        m.add_exchange(np.array([2, 0, 0, 0]), np.array([1000, 0, 0, 0]), phase_kind="long")
        cost = evaluate_cost(m, machine())
        assert cost.comm_time == pytest.approx(2 * 1e-5 + 1000 * 1e-9)

    def test_allreduce_priced_with_log_term(self):
        m = metrics()
        m.add_allreduce(3)
        cost = evaluate_cost(m, machine())
        assert cost.sync_time == pytest.approx(3 * machine().allreduce_time())
        assert cost.bucket_time == cost.sync_time

    def test_total_is_bucket_plus_other(self):
        m = metrics()
        m.add_compute(ComputeKind.BF_RELAX, np.ones(8), phase_kind="bf")
        m.add_allreduce(1)
        cost = evaluate_cost(m, machine())
        assert cost.total_time == pytest.approx(cost.bucket_time + cost.other_time)
        assert cost.total_time == pytest.approx(
            cost.compute_time + cost.comm_time + cost.sync_time
        )

    def test_monotone_in_bytes(self):
        m1, m2 = metrics(), metrics()
        m1.add_exchange(np.array([1, 0, 0, 0]), np.array([100, 0, 0, 0]))
        m2.add_exchange(np.array([1, 0, 0, 0]), np.array([200, 0, 0, 0]))
        assert (
            evaluate_cost(m2, machine()).total_time
            > evaluate_cost(m1, machine()).total_time
        )

    def test_unknown_kind_rejected(self):
        from repro.runtime.metrics import StepRecord

        m = metrics()
        m.records.append(StepRecord(kind="mystery", comp_max=1))
        with pytest.raises(ValueError):
            evaluate_cost(m, machine())

    def test_as_row(self):
        cost = evaluate_cost(metrics(), machine())
        assert {"total_s", "bkt_s", "other_s"} <= set(cost.as_row())


class TestSimulatedGteps:
    def test_graph500_convention(self):
        m = metrics()
        tw = np.zeros(8)
        tw[0] = 1000
        m.add_compute(ComputeKind.BF_RELAX, tw)
        t = evaluate_cost(m, machine()).total_time
        assert simulated_gteps(10_000, m, machine()) == pytest.approx(
            10_000 / t / 1e9
        )

    def test_zero_time_edge_case(self):
        assert simulated_gteps(10, metrics(), machine()) == float("inf")
        assert simulated_gteps(0, metrics(), machine()) == 0.0

    def test_pruning_raises_gteps(self):
        # same edge count, fewer relaxations -> higher TEPS
        m_full, m_pruned = metrics(), metrics()
        tw = np.zeros(8)
        tw[0] = 1000
        m_full.add_compute(ComputeKind.BF_RELAX, tw)
        tw2 = np.zeros(8)
        tw2[0] = 100
        m_pruned.add_compute(ComputeKind.BF_RELAX, tw2)
        assert simulated_gteps(10_000, m_pruned, machine()) > simulated_gteps(
            10_000, m_full, machine()
        )
