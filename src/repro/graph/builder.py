"""Edge-list to CSR construction.

The Graph 500 pipeline generates a stream of (tail, head) pairs; this module
turns such streams into :class:`~repro.graph.csr.CSRGraph` instances, handling
symmetrization, self-loop removal and duplicate-edge resolution (keep the
minimum weight, as any SSSP-correct dedup must).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["from_edges", "from_undirected_edges", "compact_edges"]


def compact_edges(
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    *,
    drop_self_loops: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort arcs by (tail, head), drop self-loops and deduplicate.

    Duplicate arcs (same tail and head) are merged keeping the minimum
    weight — the only reduction that preserves shortest-path distances.

    Returns the compacted ``(tails, heads, weights)`` triple.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if not (tails.shape == heads.shape == weights.shape):
        raise ValueError("tails, heads and weights must have equal length")
    if drop_self_loops:
        keep = tails != heads
        tails, heads, weights = tails[keep], heads[keep], weights[keep]
    if tails.size == 0:
        return tails, heads, weights
    # Sorting by (tail, head, weight) dominates graph construction. When the
    # three fields fit together in 62 bits, a single argsort of a packed
    # composite key is several times faster than a 3-key lexsort.
    h_span = int(heads.max()) + 1
    w_span = int(weights.max()) + 1
    t_bits = int(tails.max()).bit_length()
    if t_bits + h_span.bit_length() + w_span.bit_length() <= 62 and weights.min() >= 0:
        key = (tails * h_span + heads) * w_span + weights
        order = np.argsort(key, kind="stable")
    else:
        order = np.lexsort((weights, heads, tails))
    tails, heads, weights = tails[order], heads[order], weights[order]
    # After sorting by (tail, head, weight), the first arc of each duplicate
    # run carries the minimum weight.
    first = np.empty(tails.size, dtype=bool)
    first[0] = True
    np.not_equal(tails[1:], tails[:-1], out=first[1:])
    first[1:] |= heads[1:] != heads[:-1]
    return tails[first], heads[first], weights[first]


def from_edges(
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    num_vertices: int,
    *,
    undirected: bool = False,
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from directed arcs.

    Parameters
    ----------
    tails, heads, weights:
        Parallel arrays describing the arcs.
    num_vertices:
        Total vertex count ``n`` (vertex ids must be in ``[0, n)``).
    undirected:
        Mark the result as undirected. The caller is responsible for the
        arc set already being symmetric; use :func:`from_undirected_edges`
        to symmetrize automatically.
    dedup:
        Remove self-loops and duplicate arcs (min-weight wins).
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if tails.size and (
        tails.min() < 0
        or heads.min() < 0
        or tails.max() >= num_vertices
        or heads.max() >= num_vertices
    ):
        raise ValueError("vertex ids out of range")
    if dedup:
        tails, heads, weights = compact_edges(tails, heads, weights)
    else:
        order = np.lexsort((heads, tails))
        tails, heads, weights = tails[order], heads[order], weights[order]
    counts = np.bincount(tails, minlength=num_vertices).astype(np.int64)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, heads, weights, undirected=undirected)


def from_undirected_edges(
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    num_vertices: int,
) -> CSRGraph:
    """Build a symmetrized :class:`CSRGraph` from undirected edges.

    Each input edge ``{u, v}`` with weight ``w`` produces the arcs ``(u, v)``
    and ``(v, u)``, both with weight ``w``. Self-loops are discarded and
    parallel edges collapse to the lightest.
    """
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    all_tails = np.concatenate([tails, heads])
    all_heads = np.concatenate([heads, tails])
    all_weights = np.concatenate([weights, weights])
    return from_edges(
        all_tails, all_heads, all_weights, num_vertices, undirected=True, dedup=True
    )
