"""Offline push/pull decision oracle (Section IV-G).

The paper validates its push–pull decision heuristic by enumerating *all*
``2^k`` per-bucket decision sequences (``k`` = number of Δ-stepping epochs),
measuring the running time of each, and checking that the heuristic's
sequence matches the best one. This module reproduces that validation
routine against the simulated cost model.

Because push and pull relax the same set of useful edges, the distance
evolution — and hence the bucket sequence and ``k`` itself — is identical
across all decision sequences, which is what makes the enumeration well
defined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp
from repro.graph.csr import CSRGraph
from repro.runtime.machine import MachineConfig

__all__ = ["OracleReport", "evaluate_decision_sequences"]

MAX_ENUMERATED_BUCKETS = 14
"""Safety cap: enumerating beyond 2^14 sequences is never needed at
reproduction scale and would only burn time."""


@dataclass
class OracleReport:
    """Outcome of the exhaustive decision-sequence evaluation."""

    num_buckets: int
    heuristic_sequence: tuple[str, ...]
    heuristic_time: float
    """Simulated time of the auto run, *including* its decision overheads."""
    heuristic_replay_time: float
    """Simulated time of the heuristic's sequence replayed without decision
    overhead — the apples-to-apples number against :attr:`best_time`."""
    best_sequence: tuple[str, ...]
    best_time: float
    worst_time: float
    all_times: dict[tuple[str, ...], float] = field(repr=False, default_factory=dict)

    @property
    def heuristic_is_optimal(self) -> bool:
        """True when the heuristic's *decision sequence* is the fastest one
        (ties count) — the paper's Section IV-G criterion."""
        return self.heuristic_replay_time <= self.best_time * (1 + 1e-12)

    @property
    def slowdown_vs_best(self) -> float:
        """Replayed heuristic time over best time (1.0 = optimal)."""
        if self.best_time == 0:
            return 1.0
        return self.heuristic_replay_time / self.best_time

    @property
    def decision_overhead(self) -> float:
        """Extra simulated time the online decision itself costs."""
        return self.heuristic_time - self.heuristic_replay_time


def evaluate_decision_sequences(
    graph: CSRGraph,
    root: int,
    *,
    config: SolverConfig | None = None,
    delta: int = 25,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 8,
) -> OracleReport:
    """Enumerate all push/pull sequences and compare with the heuristic.

    Runs the pruning algorithm once in ``auto`` mode to obtain the
    heuristic's choices and the epoch count ``k``, then replays all ``2^k``
    forced sequences, scoring each by simulated time.
    """
    if config is None:
        config = SolverConfig(
            delta=delta, use_ios=True, use_pruning=True, use_hybrid=True
        )
    if not config.use_pruning:
        raise ValueError("oracle evaluation requires use_pruning=True")

    auto = solve_sssp(
        graph,
        root,
        algorithm="auto",
        config=config.evolve(pushpull_mode="auto"),
        machine=machine,
        num_ranks=num_ranks,
        threads_per_rank=threads_per_rank,
    )
    heuristic_sequence = tuple(
        str(stats["mode"]) for stats in auto.metrics.per_bucket_stats
    )
    k = len(heuristic_sequence)
    if k > MAX_ENUMERATED_BUCKETS:
        raise ValueError(
            f"{k} buckets would need 2^{k} runs; raise delta or enable "
            "hybridization to keep the enumeration tractable"
        )

    all_times: dict[tuple[str, ...], float] = {}
    for seq in itertools.product(("push", "pull"), repeat=k):
        replay = solve_sssp(
            graph,
            root,
            algorithm="seq",
            config=config.evolve(pushpull_mode="sequence", pushpull_sequence=seq),
            machine=machine,
            num_ranks=num_ranks,
            threads_per_rank=threads_per_rank,
        )
        all_times[seq] = replay.cost.total_time

    best_sequence = min(all_times, key=all_times.get)
    return OracleReport(
        num_buckets=k,
        heuristic_sequence=heuristic_sequence,
        heuristic_time=auto.cost.total_time,
        heuristic_replay_time=all_times[heuristic_sequence],
        best_sequence=best_sequence,
        best_time=all_times[best_sequence],
        worst_time=max(all_times.values()),
        all_times=all_times,
    )
