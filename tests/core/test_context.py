"""Unit tests for the execution context and its preprocessing."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.context import make_context
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind


def ctx_for(graph, *, delta=25, ranks=2, threads=2, **cfg):
    machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
    return make_context(graph, machine, SolverConfig(delta=delta, **cfg))


class TestMakeContext:
    def test_graph_is_weight_sorted(self, rmat1_small):
        ctx = ctx_for(rmat1_small)
        for u in range(0, ctx.graph.num_vertices, 53):
            assert np.all(np.diff(ctx.graph.neighbor_weights(u)) >= 0)

    def test_short_long_tables_consistent(self, rmat1_small):
        ctx = ctx_for(rmat1_small, delta=25)
        assert np.array_equal(
            ctx.short_offsets + ctx.long_degrees, ctx.graph.degrees
        )
        # short offsets count exactly the arcs lighter than delta
        assert ctx.short_offsets.sum() == (ctx.graph.weights < 25).sum()

    def test_partition_matches_machine(self, rmat1_small):
        ctx = ctx_for(rmat1_small, ranks=4)
        assert ctx.partition.num_ranks == 4
        assert ctx.partition.num_vertices == rmat1_small.num_vertices

    def test_heavy_threshold_disabled_without_lb(self, rmat1_small):
        ctx = ctx_for(rmat1_small)
        assert ctx.heavy_threshold == float("inf")

    def test_heavy_threshold_derived_with_lb(self, rmat1_small):
        ctx = ctx_for(rmat1_small, intra_lb=True)
        assert ctx.heavy_threshold < float("inf")
        assert ctx.heavy_threshold >= 8


class TestCharging:
    def test_charge_records_compute(self, path_graph):
        ctx = ctx_for(path_graph)
        ctx.charge(
            ComputeKind.SHORT_RELAX,
            np.array([0, 1]),
            np.array([3.0, 4.0]),
            phase_kind="short",
        )
        rec = ctx.metrics.records[-1]
        assert rec.comp_total == 7.0
        assert ctx.metrics.total_relaxations == 0  # not counted by default

    def test_charge_count_as_relax(self, path_graph):
        ctx = ctx_for(path_graph)
        ctx.charge(
            ComputeKind.SHORT_RELAX,
            np.array([0, 1]),
            None,
            phase_kind="short",
            count_as_relax=True,
        )
        assert ctx.metrics.total_relaxations == 2

    def test_charge_scan_uniform_within_rank(self, path_graph):
        ctx = ctx_for(path_graph, ranks=2, threads=2)
        ctx.charge_scan(np.array([4, 2]))
        rec = ctx.metrics.records[-1]
        assert rec.kind == ComputeKind.BUCKET_SCAN.value
        assert rec.comp_max == 2.0  # 4 vertices over 2 threads
        assert rec.phase_kind == "bucket"

    def test_charge_scan_shape_checked(self, path_graph):
        ctx = ctx_for(path_graph, ranks=2)
        with pytest.raises(ValueError):
            ctx.charge_scan(np.array([1, 2, 3]))

    def test_scan_all_ranks_defaults_to_n(self, path_graph):
        ctx = ctx_for(path_graph, ranks=2, threads=1)
        ctx.scan_all_ranks()
        rec = ctx.metrics.records[-1]
        assert rec.comp_total == pytest.approx(path_graph.num_vertices)

    def test_charge_with_lb_spreads_heavy(self, star_graph):
        ctx = ctx_for(star_graph, ranks=1, threads=4, intra_lb=True, heavy_degree=2)
        ctx.charge(
            ComputeKind.LONG_PUSH_RELAX,
            np.array([0]),
            np.array([8.0]),
            phase_kind="long",
        )
        rec = ctx.metrics.records[-1]
        assert rec.comp_max == pytest.approx(2.0)  # 8 units over 4 threads
