"""Tentative-distance array helpers.

All algorithms maintain an ``int64`` array ``d`` of tentative distances,
initialised to :data:`INF` everywhere except the root (Section II-A). ``INF``
is chosen far below the ``int64`` maximum so that ``d + w`` can never
overflow even for pathological weight sums.
"""

from __future__ import annotations

import numpy as np

__all__ = ["INF", "init_distances", "is_reached", "settled_fraction"]

INF: int = np.int64(2**62)
"""Sentinel for 'unreached'; safely addable to any realistic weight."""


def init_distances(num_vertices: int, root: int) -> np.ndarray:
    """Fresh tentative-distance array: 0 at the root, INF elsewhere."""
    if not 0 <= root < num_vertices:
        raise ValueError(f"root {root} out of range [0, {num_vertices})")
    d = np.full(num_vertices, INF, dtype=np.int64)
    d[root] = 0
    return d


def is_reached(d: np.ndarray) -> np.ndarray:
    """Boolean mask of vertices with a finite tentative distance."""
    return d < INF


def settled_fraction(settled: np.ndarray) -> float:
    """Fraction of vertices marked settled (the hybrid-switch statistic)."""
    if settled.size == 0:
        return 1.0
    return float(settled.sum() / settled.size)
