"""Unit tests for the distributed Bellman-Ford implementation."""

import numpy as np
import pytest

from repro.core.bellman_ford import bellman_ford_stage, run_bellman_ford
from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.context import make_context
from repro.core.distances import INF, init_distances
from repro.core.reference import dijkstra_reference
from repro.runtime.machine import MachineConfig


def ctx_for(graph, ranks=2, threads=2):
    machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
    return make_context(graph, machine, SolverConfig(delta=DELTA_INFINITY))


class TestCorrectness:
    def test_path_graph(self, path_graph):
        ctx = ctx_for(path_graph)
        d = run_bellman_ford(ctx, 0)
        assert np.array_equal(d, dijkstra_reference(path_graph, 0))

    def test_diamond(self, diamond_graph):
        ctx = ctx_for(diamond_graph)
        d = run_bellman_ford(ctx, 0)
        assert list(d) == [0, 1, 2, 2]

    def test_disconnected_leaves_inf(self, disconnected_graph):
        ctx = ctx_for(disconnected_graph)
        d = run_bellman_ford(ctx, 0)
        assert d[2] == INF and d[4] == INF

    def test_rmat(self, rmat1_small):
        ctx = ctx_for(rmat1_small, ranks=4)
        d = run_bellman_ford(ctx, 5)
        assert np.array_equal(d, dijkstra_reference(rmat1_small, 5))

    def test_single_vertex(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(np.array([0, 0]), np.array([]), np.array([]))
        ctx = ctx_for(g, ranks=1, threads=1)
        d = run_bellman_ford(ctx, 0)
        assert list(d) == [0]


class TestPhaseSemantics:
    def test_phase_count_bounded_by_tree_depth(self, path_graph):
        ctx = ctx_for(path_graph)
        run_bellman_ford(ctx, 0)
        # path of 5 vertices: 4 productive iterations + 1 empty check
        assert ctx.metrics.bf_phases == 5

    def test_relaxation_count(self, star_graph):
        ctx = ctx_for(star_graph)
        run_bellman_ford(ctx, 0)
        # root relaxes 8 arcs; each leaf relaxes its single arc back: 16 total
        assert ctx.metrics.total_relaxations == 16

    def test_termination_allreduce_per_iteration(self, path_graph):
        ctx = ctx_for(path_graph)
        run_bellman_ford(ctx, 0)
        # one allreduce per while-loop pass, including the final empty one
        assert ctx.metrics.total_allreduces == ctx.metrics.bf_phases + 1

    def test_stage_resumes_from_state(self, path_graph):
        # Mimic the hybrid hand-off: distances partially computed.
        ctx = ctx_for(path_graph)
        d = init_distances(5, 0)
        d[1] = 5  # already settled by a previous stage
        iters = bellman_ford_stage(ctx, d, np.array([1], dtype=np.int64))
        assert iters > 0
        assert np.array_equal(d, dijkstra_reference(path_graph, 0))

    def test_stage_with_no_active_is_noop(self, path_graph):
        ctx = ctx_for(path_graph)
        d = init_distances(5, 0)
        before = d.copy()
        iters = bellman_ford_stage(ctx, d, np.array([], dtype=np.int64))
        assert iters == 0
        assert np.array_equal(d, before)


class TestViaEngine:
    def test_engine_dispatches_bf_for_delta_infinity(self, rmat1_small):
        from repro.core.delta_stepping import DeltaSteppingEngine

        ctx = ctx_for(rmat1_small)
        d = DeltaSteppingEngine(ctx).run(3)
        assert np.array_equal(d, dijkstra_reference(rmat1_small, 3))
        assert ctx.metrics.buckets_processed == 0
        assert ctx.metrics.short_phases == 0
