"""Hybridization: Δ-stepping → Bellman-Ford switch rule (Section III-D).

Δ-stepping wins on work done; Bellman-Ford wins on phase count. The paper
observes that most relaxations concentrate in the first few buckets (the
high-degree vertices settle early in scale-free graphs), so it runs
Δ-stepping only until the fraction of settled vertices exceeds a threshold
τ (0.4 works well), then collapses all remaining buckets into one and
finishes with Bellman-Ford.
"""

from __future__ import annotations

import numpy as np

__all__ = ["should_switch", "DEFAULT_TAU"]

DEFAULT_TAU = 0.4
"""The paper's recommended settled-fraction threshold."""


def should_switch(
    settled: np.ndarray,
    tau: float,
    *,
    count: int | None = None,
    tracer=None,
) -> bool:
    """True when the settled fraction exceeds ``tau``.

    Evaluated at the end of each epoch; the settled count is a global
    aggregate (one allreduce, charged by the engine). Callers tracking the
    settled count incrementally pass it as ``count`` to skip the O(n) sum;
    the decision is identical either way. A ``tracer``
    (:class:`repro.obs.tracer.Tracer`), when given, records the check as an
    instant event — pure telemetry, no effect on the decision.
    """
    if settled.size == 0:
        return True
    if count is None:
        count = int(settled.sum())
    fraction = float(count) / settled.size
    decision = fraction > tau
    if tracer is not None:
        tracer.instant(
            "hybrid-check", settled_fraction=fraction, tau=tau, switch=decision
        )
    return decision
