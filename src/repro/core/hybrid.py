"""Hybridization: Δ-stepping → Bellman-Ford switch rule (Section III-D).

Δ-stepping wins on work done; Bellman-Ford wins on phase count. The paper
observes that most relaxations concentrate in the first few buckets (the
high-degree vertices settle early in scale-free graphs), so it runs
Δ-stepping only until the fraction of settled vertices exceeds a threshold
τ (0.4 works well), then collapses all remaining buckets into one and
finishes with Bellman-Ford.
"""

from __future__ import annotations

import numpy as np

__all__ = ["should_switch", "DEFAULT_TAU"]

DEFAULT_TAU = 0.4
"""The paper's recommended settled-fraction threshold."""


def should_switch(
    settled: np.ndarray, tau: float, *, count: int | None = None
) -> bool:
    """True when the settled fraction exceeds ``tau``.

    Evaluated at the end of each epoch; the settled count is a global
    aggregate (one allreduce, charged by the engine). Callers tracking the
    settled count incrementally pass it as ``count`` to skip the O(n) sum;
    the decision is identical either way.
    """
    if settled.size == 0:
        return True
    if count is None:
        count = int(settled.sum())
    return float(count) / settled.size > tau
