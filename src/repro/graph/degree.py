"""Degree-distribution statistics.

Paper Fig. 8 tabulates the *maximum* vertex degree of RMAT-1 and RMAT-2
graphs at scales 28–32, showing that RMAT-1's max degree is in the millions
while RMAT-2's grows far more slowly — the skew that motivates the two-tier
load balancing of Section III-E. This module computes the same statistics
(max degree, percentiles, imbalance factors) at reproduction scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import BlockPartition

__all__ = ["DegreeStats", "degree_stats", "thread_load_imbalance"]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_vertices: int
    num_undirected_edges: int
    max_degree: int
    mean_degree: float
    median_degree: float
    p99_degree: float
    p999_degree: float
    num_isolated: int
    skew_ratio: float
    """``max_degree / mean_degree`` — the load-imbalance yardstick of Fig. 8."""

    def as_row(self) -> dict[str, float | int]:
        """Dictionary view convenient for table printing."""
        return {
            "n": self.num_vertices,
            "m": self.num_undirected_edges,
            "max_deg": self.max_degree,
            "mean_deg": round(self.mean_degree, 2),
            "median_deg": self.median_degree,
            "p99": self.p99_degree,
            "p99.9": self.p999_degree,
            "isolated": self.num_isolated,
            "skew": round(self.skew_ratio, 1),
        }


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    deg = graph.degrees
    n = graph.num_vertices
    if n == 0:
        return DegreeStats(0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    mean = float(deg.mean())
    return DegreeStats(
        num_vertices=n,
        num_undirected_edges=graph.num_undirected_edges,
        max_degree=int(deg.max()),
        mean_degree=mean,
        median_degree=float(np.median(deg)),
        p99_degree=float(np.percentile(deg, 99)),
        p999_degree=float(np.percentile(deg, 99.9)),
        num_isolated=int((deg == 0).sum()),
        skew_ratio=float(deg.max() / mean) if mean > 0 else 0.0,
    )


def thread_load_imbalance(
    graph: CSRGraph, partition: BlockPartition, threads_per_rank: int
) -> float:
    """Max-to-mean ratio of aggregate degree across all threads.

    The paper measures thread load as the aggregate degree of the vertices a
    thread owns (Section III-E). A value of 1.0 is perfect balance; RMAT-1
    graphs exhibit large values that grow with scale.
    """
    deg = graph.degrees
    loads = []
    for rank in range(partition.num_ranks):
        lo, hi = partition.rank_range(rank)
        local_deg = deg[lo:hi]
        sub = BlockPartition(hi - lo, threads_per_rank)
        for t in range(threads_per_rank):
            tlo, thi = sub.rank_range(t)
            loads.append(int(local_deg[tlo:thi].sum()))
    loads_arr = np.asarray(loads, dtype=np.float64)
    mean = loads_arr.mean()
    if mean == 0:
        return 1.0
    return float(loads_arr.max() / mean)
