"""Synthetic stand-ins for the paper's real-world social graphs.

Section IV-H evaluates on Friendster (63 M vertices / 1.8 B edges), Orkut
(3 M / 117 M) and LiveJournal (4.8 M / 68 M) from SNAP. Those datasets are
not available offline, so we generate *scaled-down synthetic equivalents*
that preserve the property driving the paper's result — a heavy-tailed
(power-law-ish) degree distribution with a dense core — using a Chung–Lu
style expected-degree model seeded with a power-law degree sequence whose
exponent and average degree match the published statistics of each network.

The substitution is documented in DESIGN.md: the Sec. IV-H experiment shows
OPT ≈ 2x over baseline Δ-stepping *because* of degree skew, which the
stand-ins reproduce; absolute GTEPS are not comparable (and are not meant
to be — our substrate is a simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_weights

__all__ = ["SocialGraphSpec", "SOCIAL_GRAPH_SPECS", "synthetic_social_graph"]


@dataclass(frozen=True)
class SocialGraphSpec:
    """Shape parameters of a social-network stand-in.

    ``gamma`` is the power-law exponent of the degree sequence and
    ``avg_degree`` the target mean degree; both are chosen to match the
    published statistics of the original network.
    """

    name: str
    paper_vertices: int
    paper_edges: int
    gamma: float
    avg_degree: float

    @property
    def paper_avg_degree(self) -> float:
        """Average degree of the original network (2m/n)."""
        return 2 * self.paper_edges / self.paper_vertices


SOCIAL_GRAPH_SPECS: dict[str, SocialGraphSpec] = {
    "friendster": SocialGraphSpec(
        name="friendster",
        paper_vertices=63_000_000,
        paper_edges=1_800_000_000,
        gamma=2.4,
        avg_degree=57.0,
    ),
    "orkut": SocialGraphSpec(
        name="orkut",
        paper_vertices=3_000_000,
        paper_edges=117_000_000,
        gamma=2.2,
        avg_degree=78.0,
    ),
    "livejournal": SocialGraphSpec(
        name="livejournal",
        paper_vertices=4_800_000,
        paper_edges=68_000_000,
        gamma=2.5,
        avg_degree=28.0,
    ),
}


def _powerlaw_degree_sequence(
    n: int, gamma: float, avg_degree: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw a degree sequence ~ Pareto(gamma) rescaled to the target mean."""
    # Inverse-CDF sampling of a bounded Pareto on [1, n^(1/(gamma-1))].
    xmin = 1.0
    xmax = max(2.0, n ** (1.0 / (gamma - 1.0)))
    u = rng.random(n)
    a = gamma - 1.0
    raw = (xmin**-a - u * (xmin**-a - xmax**-a)) ** (-1.0 / a)
    raw *= avg_degree / raw.mean()
    return np.maximum(raw, 0.5)


def synthetic_social_graph(
    name: str,
    *,
    scale: int = 14,
    seed: int = 0,
    max_weight: int = 255,
) -> CSRGraph:
    """Generate a scaled-down stand-in for a SNAP social network.

    Parameters
    ----------
    name:
        One of ``"friendster"``, ``"orkut"``, ``"livejournal"``.
    scale:
        ``log2`` of the stand-in's vertex count (the original networks are
        shrunk to this size, keeping degree exponent and mean degree).
    seed:
        Generator seed.
    max_weight:
        Edge weights drawn uniformly from ``[1, max_weight]`` (the paper's
        SSSP benchmark weight model, applied to the social graphs too).
    """
    try:
        spec = SOCIAL_GRAPH_SPECS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown social graph {name!r}; choose from {sorted(SOCIAL_GRAPH_SPECS)}"
        ) from None
    rng = np.random.default_rng(seed)
    n = 1 << scale
    weights_seq = _powerlaw_degree_sequence(n, spec.gamma, spec.avg_degree, rng)
    total = weights_seq.sum()
    # Chung-Lu: sample m edges with endpoint probabilities proportional to
    # the expected-degree sequence. Sampling endpoints independently gives
    # expected degrees matching the sequence (up to collisions).
    target_edges = int(spec.avg_degree * n / 2)
    probs = weights_seq / total
    tails = rng.choice(n, size=target_edges, p=probs)
    heads = rng.choice(n, size=target_edges, p=probs)
    w = uniform_weights(target_edges, max_weight=max_weight, seed=seed + 1)
    return from_undirected_edges(tails, heads, w, num_vertices=n)
