"""Trace exporters: JSONL round-trip, Perfetto validity, Prometheus file."""

import json

import pytest

from repro.cli import main
from repro.core.solver import solve_sssp
from repro.obs.export import (
    perfetto_trace,
    validate_jsonl,
    validate_perfetto,
    validate_trace_file,
)
from repro.obs.report import load_trace, render_report
from repro.obs.tracer import TraceConfig
from repro.runtime.machine import MachineConfig


@pytest.fixture()
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=4)


def _traced_solve(graph, machine, **cfg_kwargs):
    return solve_sssp(
        graph, 3, algorithm="opt", delta=25, machine=machine,
        trace=TraceConfig(**cfg_kwargs),
    )


class TestJsonl:
    def test_round_trip_through_report(self, rmat1_small, machine, tmp_path):
        path = tmp_path / "run.jsonl"
        res = _traced_solve(rmat1_small, machine, path=str(path))
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert validate_jsonl(lines) == []
        assert lines[0]["type"] == "meta"
        assert lines[-1]["type"] == "summary"

        trace = load_trace(str(path))
        assert trace.format == "jsonl"
        assert len(trace.records) == len(res.metrics.records)
        report = render_report(trace)
        assert "trace report:" in report
        assert "wall clock vs. cost model" in report

    def test_trace_report_cli(self, rmat1_small, machine, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _traced_solve(rmat1_small, machine, path=str(path))
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace report:" in out
        assert "per-rank simulated busy time" in out

    def test_trace_report_validate_cli(self, rmat1_small, machine, tmp_path,
                                       capsys):
        path = tmp_path / "run.jsonl"
        _traced_solve(rmat1_small, machine, path=str(path))
        assert main(["trace-report", str(path), "--validate"]) == 0
        assert "OK (jsonl)" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not json\n")
        assert main(["trace-report", str(path), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestPerfetto:
    def test_file_is_valid_trace_events_json(self, rmat1_small, machine,
                                             tmp_path):
        path = tmp_path / "run.perfetto.json"
        res = _traced_solve(
            rmat1_small, machine, path=str(path), format="perfetto"
        )
        data = json.loads(path.read_text())
        assert validate_perfetto(data) == []
        assert data["otherData"]["num_ranks"] == machine.num_ranks

        events = data["traceEvents"]
        for ev in events:
            assert ev["ph"] in ("X", "M", "i")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert {"name", "pid", "tid", "ts"} <= set(ev)

        # One metadata track per simulated rank on the ranks process.
        rank_threads = [
            ev for ev in events
            if ev["ph"] == "M" and ev.get("name") == "thread_name"
            and ev["pid"] == 2
        ]
        assert len(rank_threads) == machine.num_ranks

        process_names = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev.get("name") == "process_name"
        }
        assert process_names == {
            "wall clock (measured)",
            "cost model (simulated)",
            "simulated ranks",
        }

        # Per-rank slices cover every record with positive per-rank time.
        rank_slices = [
            ev for ev in events if ev["ph"] == "X" and ev["pid"] == 2
        ]
        expected = sum(
            sum(1 for x in e["rank_sim"] if x > 0)
            for e in res.trace.events
            if e["type"] == "record"
        )
        assert len(rank_slices) == expected

    def test_load_trace_reads_perfetto_back(self, rmat1_small, machine,
                                            tmp_path):
        path = tmp_path / "run.perfetto.json"
        _traced_solve(rmat1_small, machine, path=str(path), format="perfetto")
        trace = load_trace(str(path))
        assert trace.format == "perfetto"
        assert trace.spans and trace.records
        assert "trace report:" in render_report(trace)

    def test_validate_trace_file_detects_format(self, rmat1_small, machine,
                                                tmp_path):
        p1 = tmp_path / "a.jsonl"
        p2 = tmp_path / "b.json"
        _traced_solve(rmat1_small, machine, path=str(p1))
        _traced_solve(rmat1_small, machine, path=str(p2), format="perfetto")
        assert validate_trace_file(str(p1)) == ("jsonl", [])
        assert validate_trace_file(str(p2)) == ("perfetto", [])

    def test_in_memory_perfetto_export(self, rmat1_small, machine):
        res = _traced_solve(rmat1_small, machine)
        data = perfetto_trace(res.trace)
        assert validate_perfetto(data) == []


class TestMetricsOut:
    def test_prometheus_file_written(self, rmat1_small, machine, tmp_path):
        path = tmp_path / "metrics.prom"
        res = _traced_solve(rmat1_small, machine, metrics_path=str(path))
        text = path.read_text()
        assert "# TYPE sssp_records_total counter" in text
        assert "# TYPE sssp_wall_seconds gauge" in text
        assert "sssp_epoch_wall_seconds_bucket" in text
        assert res.trace.artifacts["metrics"] == str(path)

    def test_solve_cli_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        prom = tmp_path / "cli.prom"
        rc = main([
            "solve", "--scale", "9", "--ranks", "2", "--threads", "2",
            "--trace", str(trace), "--metrics-out", str(prom),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wall clock vs. cost model" in out
        assert trace.exists() and prom.exists()
