"""Execution-trace extraction: the StepRecord stream as a priced timeline.

A run's :class:`~repro.runtime.metrics.Metrics` carries the raw event
stream; this module turns it into the per-event timeline that performance
debugging needs — each record priced by the cost model, with cumulative
simulated time — plus aggregations by phase kind and a compact text
rendering.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.costmodel import _compute_unit_cost
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics

__all__ = ["timeline", "time_by_phase_kind", "render_timeline"]


def timeline(metrics: Metrics, machine: MachineConfig) -> list[dict[str, Any]]:
    """One row per step record, priced and time-stamped.

    Columns: ``step``, ``kind``, ``phase``, ``cost_s`` (the record's
    simulated duration) and ``t_s`` (cumulative simulated time at the end
    of the record). The final ``t_s`` equals the cost model's total time.
    """
    t_allreduce = machine.allreduce_time()
    rows: list[dict[str, Any]] = []
    t = 0.0
    for i, rec in enumerate(metrics.records):
        if rec.kind == "exchange":
            cost = machine.alpha * rec.msgs_max + machine.beta * rec.bytes_max
        elif rec.kind == "allreduce":
            cost = rec.allreduces * t_allreduce
        else:
            cost = rec.comp_max * _compute_unit_cost(rec.kind, machine)
        t += cost
        rows.append(
            {
                "step": i,
                "kind": rec.kind,
                "phase": rec.phase_kind,
                "cost_s": cost,
                "t_s": t,
            }
        )
    return rows


def time_by_phase_kind(
    metrics: Metrics, machine: MachineConfig
) -> dict[str, float]:
    """Simulated seconds per paper-level phase tag (short/long/bf/bucket)."""
    out: dict[str, float] = {}
    for row in timeline(metrics, machine):
        out[row["phase"]] = out.get(row["phase"], 0.0) + row["cost_s"]
    return out


def render_timeline(
    metrics: Metrics,
    machine: MachineConfig,
    *,
    top: int = 20,
) -> str:
    """Text rendering of the ``top`` most expensive records.

    A quick profiler view: where did the simulated time go?
    """
    rows = timeline(metrics, machine)
    total = rows[-1]["t_s"] if rows else 0.0
    expensive = sorted(rows, key=lambda r: r["cost_s"], reverse=True)[:top]
    lines = [f"total simulated time: {total * 1e3:.3f} ms; "
             f"{len(rows)} records; top {len(expensive)} by cost:"]
    for r in expensive:
        share = r["cost_s"] / total if total else 0.0
        lines.append(
            f"  #{r['step']:>5} {r['kind']:<16} {r['phase']:<7} "
            f"{r['cost_s'] * 1e6:>10.2f} us  {share:>6.1%}"
        )
    return "\n".join(lines)
