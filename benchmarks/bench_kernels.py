"""Library kernel microbenchmarks (wall-clock, multi-round).

Unlike the ``bench_fig*`` modules (which regenerate paper figures against
the simulated cost model), these time the Python/numpy kernels themselves
with proper statistics — the regression guard for the library's own hot
paths: range concatenation, grouped-min relaxation, R-MAT generation, CSR
construction, weight-sorting, exchange accounting and a full solve.
"""

from __future__ import annotations

import numpy as np
import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import cached_rmat, choose_root, default_machine
from repro.core.relax import apply_relaxations
from repro.core.solver import solve_sssp
from repro.graph.builder import from_undirected_edges
from repro.graph.partition import BlockPartition
from repro.graph.rmat import rmat_edges
from repro.runtime.comm import Communicator
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics
from repro.util.ranges import concat_ranges

N = 200_000
rng = np.random.default_rng(0)


def test_kernel_concat_ranges(benchmark):
    starts = rng.integers(0, 1000, N)
    ends = starts + rng.integers(0, 30, N)
    idx, owners = benchmark(concat_ranges, starts, ends)
    assert idx.size == owners.size


def test_kernel_apply_relaxations(benchmark):
    dst = rng.integers(0, N, N)
    nd = rng.integers(0, 1000, N).astype(np.int64)

    def run():
        d = np.full(N, 10**9, dtype=np.int64)
        return apply_relaxations(d, dst, nd)

    changed = benchmark(run)
    assert changed.size > 0


def test_kernel_rmat_edge_stream(benchmark):
    tails, heads = benchmark(rmat_edges, 14, 16)
    assert tails.size == 16 << 14


def test_kernel_csr_construction(benchmark):
    tails, heads = rmat_edges(13, 16, seed=3)
    weights = rng.integers(1, 256, tails.size).astype(np.int64)

    g = benchmark(from_undirected_edges, tails, heads, weights, 1 << 13)
    assert g.num_vertices == 1 << 13


def test_kernel_weight_sort(benchmark):
    g = cached_rmat(14, "rmat1")
    # resort from the unsorted edge orientation each round
    raw = from_undirected_edges(*g.to_edge_list(), g.num_vertices)
    out = benchmark(lambda: raw.sorted_by_weight())
    assert out.num_arcs == raw.num_arcs


def test_kernel_exchange_accounting(benchmark):
    machine = MachineConfig(num_ranks=32, threads_per_rank=2)
    part = BlockPartition(N, 32)
    src = rng.integers(0, N, N)
    dst = rng.integers(0, N, N)

    def run():
        metrics = Metrics(num_ranks=32, threads_per_rank=2)
        comm = Communicator(machine, part, metrics)
        comm.exchange_by_vertex(src, dst, 16)
        return metrics

    metrics = benchmark(run)
    assert metrics.total_bytes > 0


def test_kernel_full_solve_wall_clock(benchmark):
    graph = cached_rmat(13, "rmat1")
    root = choose_root(graph, seed=0)
    machine = default_machine(8)

    result = benchmark(
        lambda: solve_sssp(graph, root, algorithm="opt", delta=25,
                           machine=machine)
    )
    assert result.num_reached > 0


if __name__ == "__main__":
    print("kernel benchmarks run via: pytest benchmarks/bench_kernels.py "
          "--benchmark-only")
