"""Social-network analysis: hop-weighted distances on scale-free graphs.

The paper's Section IV-H scenario: single-source shortest paths on social
networks (Friendster, Orkut, LiveJournal — synthetic stand-ins here, see
DESIGN.md), where SSSP underpins centrality and influence analyses. The
heavy-tailed degree distribution is exactly the regime where the paper's
pruning + load-balancing design shines; this example compares the baseline
Δ-stepping against OPT across the three networks and sweeps Δ on one of
them (the paper found Δ = 40 best for these graphs).

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import solve_sssp, synthetic_social_graph
from repro.core.distances import INF
from repro.graph.degree import degree_stats
from repro.graph.roots import choose_root
from repro.util import format_table


def network_table() -> None:
    rows = []
    for name in ("friendster", "orkut", "livejournal"):
        graph = synthetic_social_graph(name, scale=12, seed=7).sorted_by_weight()
        stats = degree_stats(graph)
        root = choose_root(graph, seed=0)
        base = solve_sssp(graph, root, algorithm="delta", delta=40,
                          num_ranks=8, threads_per_rank=16)
        opt = solve_sssp(graph, root, algorithm="lb-opt", delta=40,
                         num_ranks=8, threads_per_rank=16, validate=True)
        rows.append(
            {
                "network": name,
                "n": stats.num_vertices,
                "m": stats.num_undirected_edges,
                "max_deg": stats.max_degree,
                "del40_gteps": base.gteps,
                "opt40_gteps": opt.gteps,
                "speedup": opt.gteps / base.gteps,
            }
        )
    print(format_table(rows, "Del-40 vs Opt-40 on social-network stand-ins"))


def delta_tuning(name: str = "orkut") -> None:
    graph = synthetic_social_graph(name, scale=12, seed=7).sorted_by_weight()
    root = choose_root(graph, seed=0)
    rows = []
    for delta in (10, 25, 40, 64, 100):
        res = solve_sssp(graph, root, algorithm="lb-opt", delta=delta,
                         num_ranks=8, threads_per_rank=16)
        rows.append({"delta": delta, "gteps": res.gteps,
                     "buckets": res.metrics.buckets_processed,
                     "relaxations": res.metrics.total_relaxations})
    print()
    print(format_table(rows, f"Δ tuning on {name} (the paper found Δ=40 best)"))


def reachability_profile(name: str = "livejournal") -> None:
    """Distance histogram — the kind of output a centrality pipeline consumes."""
    graph = synthetic_social_graph(name, scale=12, seed=7)
    root = choose_root(graph, seed=0)
    res = solve_sssp(graph, root, algorithm="opt", delta=40,
                     num_ranks=8, threads_per_rank=16)
    d = res.distances
    reached = d[d < INF]
    print(f"\n{name}: reached {reached.size}/{graph.num_vertices} vertices "
          f"from root {root}")
    qs = np.percentile(reached, [25, 50, 75, 95, 100])
    print("distance quartiles (weighted hops):",
          {p: int(v) for p, v in zip((25, 50, 75, 95, 100), qs)})


if __name__ == "__main__":
    network_table()
    delta_tuning()
    reachability_profile()
