"""Extended property-based tests: BFS, validation, histograms, SPMD, trees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bfs import run_bfs
from repro.core.histograms import build_weight_histogram
from repro.core.paths import NO_PARENT, build_parent_tree, extract_path
from repro.core.reference import dijkstra_reference
from repro.core.validation import validate_sssp_structure
from repro.graph.builder import from_undirected_edges
from repro.runtime.machine import MachineConfig
from repro.spmd import spmd_delta_stepping


@st.composite
def random_graphs(draw, max_n=28, max_m=80, max_w=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    graph = from_undirected_edges(
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, max_w + 1, m).astype(np.int64),
        n,
    )
    deg = graph.degrees
    with_edges = np.nonzero(deg > 0)[0]
    root = int(with_edges[0]) if with_edges.size else 0
    return graph, root


def hop_reference(graph, root):
    from collections import deque

    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[root] = 0
    q = deque([root])
    while q:
        u = q.popleft()
        for v in graph.neighbors(u):
            if levels[v] == -1:
                levels[v] = levels[u] + 1
                q.append(int(v))
    return levels


class TestBfsProperties:
    @settings(max_examples=40, deadline=None)
    @given(gr=random_graphs(), direction=st.sampled_from(
        ["auto", "top-down", "bottom-up"]))
    def test_levels_are_minimal_hops(self, gr, direction):
        graph, root = gr
        res = run_bfs(graph, root, direction=direction,
                      num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.levels, hop_reference(graph, root))

    @settings(max_examples=30, deadline=None)
    @given(gr=random_graphs())
    def test_hops_bound_weighted_distances(self, gr):
        graph, root = gr
        levels = run_bfs(graph, root, num_ranks=2, threads_per_rank=2).levels
        d = dijkstra_reference(graph, root)
        reached = levels >= 0
        w_min = int(graph.weights.min()) if graph.weights.size else 1
        w_max = graph.max_weight
        assert np.all(d[reached] >= levels[reached] * w_min)
        assert np.all(d[reached] <= levels[reached] * w_max)


class TestValidatorProperties:
    @settings(max_examples=50, deadline=None)
    @given(gr=random_graphs(), corrupt_seed=st.integers(0, 2**31))
    def test_accepts_iff_correct(self, gr, corrupt_seed):
        graph, root = gr
        d = dijkstra_reference(graph, root)
        assert validate_sssp_structure(graph, root, d).valid
        rng = np.random.default_rng(corrupt_seed)
        bad = d.copy()
        v = int(rng.integers(0, graph.num_vertices))
        delta = int(rng.integers(1, 50))
        from repro.core.distances import INF

        if bad[v] >= INF:
            bad[v] = delta
        elif rng.random() < 0.5 and bad[v] >= delta:
            bad[v] -= delta
        else:
            bad[v] += delta
        if np.array_equal(bad, d):
            return
        report = validate_sssp_structure(graph, root, bad)
        assert not report.valid


class TestHistogramProperties:
    @settings(max_examples=40, deadline=None)
    @given(gr=random_graphs(max_w=60), bins=st.integers(1, 32),
           t_seed=st.integers(0, 2**31))
    def test_count_below_bounded_by_bin_edges(self, gr, bins, t_seed):
        graph, _ = gr
        hist = build_weight_histogram(graph, num_bins=bins)
        rng = np.random.default_rng(t_seed)
        v = rng.integers(0, graph.num_vertices, 20)
        t = rng.uniform(0, graph.max_weight + 2, 20)
        est = hist.count_below(v, t)
        lo_bin = np.minimum((t // hist.bin_width).astype(np.int64), bins)
        hi_bin = np.minimum(lo_bin + 1, bins)
        lower = hist.cumulative[v, lo_bin]
        upper = hist.cumulative[v, hi_bin]
        assert np.all(est >= lower - 1e-9)
        assert np.all(est <= upper + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(gr=random_graphs(max_w=60), bins=st.integers(1, 16))
    def test_exact_at_bin_edges(self, gr, bins):
        graph, _ = gr
        hist = build_weight_histogram(graph, num_bins=bins)
        for u in range(0, graph.num_vertices, 7):
            for k in (0, 1, bins):
                threshold = float(k * hist.bin_width)
                exact = int((graph.neighbor_weights(u) < threshold).sum())
                est = hist.count_below(np.array([u]), np.array([threshold]))[0]
                assert est == pytest.approx(exact)


class TestSpmdProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        gr=random_graphs(),
        ranks=st.sampled_from([1, 2, 4]),
        delta=st.sampled_from([3, 10, 40]),
        ios=st.booleans(),
        pruning=st.booleans(),
        hybrid=st.booleans(),
    )
    def test_spmd_matches_reference(self, gr, ranks, delta, ios, pruning, hybrid):
        from repro.core.config import SolverConfig

        graph, root = gr
        machine = MachineConfig(num_ranks=ranks, threads_per_rank=2)
        cfg = SolverConfig(delta=delta, use_ios=ios, use_pruning=pruning,
                           use_hybrid=hybrid)
        d, _ = spmd_delta_stepping(graph, root, machine, config=cfg)
        assert np.array_equal(d, dijkstra_reference(graph, root))


class TestTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(gr=random_graphs())
    def test_every_path_cost_equals_distance(self, gr):
        graph, root = gr
        d = dijkstra_reference(graph, root)
        parent = build_parent_tree(graph, d, root)
        from repro.core.distances import INF

        for v in range(graph.num_vertices):
            if d[v] >= INF or v == root:
                continue
            path = extract_path(parent, root, v)
            assert path[0] == root and path[-1] == v
            cost = 0
            for a, b in zip(path, path[1:]):
                nbrs = graph.neighbors(a)
                ws = graph.neighbor_weights(a)
                hit = np.nonzero(nbrs == b)[0]
                assert hit.size
                cost += int(ws[hit[0]])
            assert cost == int(d[v])

    @settings(max_examples=40, deadline=None)
    @given(gr=random_graphs())
    def test_tree_edge_count(self, gr):
        graph, root = gr
        d = dijkstra_reference(graph, root)
        parent = build_parent_tree(graph, d, root)
        from repro.core.distances import INF

        reached = int((d < INF).sum())
        assert int((parent != NO_PARENT).sum()) == reached - 1
