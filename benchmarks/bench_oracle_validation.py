"""Section IV-G — Validation of the push/pull decision heuristic.

The paper enumerates all 2^k per-bucket decision sequences, compares the
best against the heuristic's choices over 16 random roots per configuration
on both families, and reports that the (refined) heuristic always found the
best sequence. We reproduce the routine for both estimator variants:

- ``exact`` (the refined heuristic taken to its limit) must be optimal on
  every test case;
- ``expectation`` (the volume heuristic with the imbalance term) is allowed
  the occasional near-miss the paper describes for its unrefined form.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_roots,
    print_table,
)
from repro.analysis.oracle import evaluate_decision_sequences
from repro.core.config import SolverConfig

NUM_ROOTS = int(__import__("os").environ.get("REPRO_ORACLE_ROOTS", "8"))
SCALE = BENCH_SCALE - 3  # 2^k full runs per root: keep the graph modest


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for family in ("rmat1", "rmat2"):
        graph = cached_rmat(SCALE, family)
        for estimator in ("exact", "expectation"):
            optimal = 0
            worst_slowdown = 1.0
            total_buckets = 0
            roots = choose_roots(graph, NUM_ROOTS, seed=3)
            for root in roots:
                cfg = SolverConfig(
                    delta=25, use_ios=True, use_pruning=True, use_hybrid=True,
                    pushpull_estimator=estimator,
                )
                rep = evaluate_decision_sequences(
                    graph, int(root), config=cfg,
                    num_ranks=4, threads_per_rank=4,
                )
                optimal += rep.heuristic_is_optimal
                worst_slowdown = max(worst_slowdown, rep.slowdown_vs_best)
                total_buckets += rep.num_buckets
            rows.append(
                {
                    "family": family.upper(),
                    "estimator": estimator,
                    "roots": len(roots),
                    "optimal": optimal,
                    "worst_slowdown": worst_slowdown,
                    "avg_buckets": total_buckets / len(roots),
                }
            )
    return rows


def test_oracle_validation(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Sec. IV-G — push/pull heuristic vs exhaustive oracle")
    for row in rows:
        if row["estimator"] == "exact":
            # the refined heuristic is optimal on every test case (paper claim)
            assert row["optimal"] == row["roots"]
        else:
            # the volume heuristic occasionally misses, but never badly
            assert row["optimal"] >= int(0.7 * row["roots"])
            assert row["worst_slowdown"] < 1.3


if __name__ == "__main__":
    print_table(compute_rows(), "Sec. IV-G — heuristic vs oracle")
