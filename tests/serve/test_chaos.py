"""ChaosPlan/ChaosSolver: determinism, fault kinds, spec parsing."""

import numpy as np
import pytest

from repro.core.solver import BatchSolver, solve_sssp
from repro.core.validation import validate_sssp_structure
from repro.graph.roots import choose_roots
from repro.runtime.watchdog import SolveTimeout
from repro.serve.chaos import ChaosEvent, ChaosPlan, ChaosSolver, InjectedFault


def make_solver(graph):
    return BatchSolver(graph, algorithm="opt", delta=25,
                       num_ranks=2, threads_per_rank=2)


class TestPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"error_rate": -0.1},
            {"error_rate": 1.5},
            {"error_rate": 0.6, "corrupt_rate": 0.6},  # bands sum > 1
            {"slow_s": -1.0},
            {"corrupt_cells": 0},
            {"max_faulty_attempts": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ChaosPlan(**kwargs)

    def test_bad_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent(0, 0, "meteor")

    def test_injects_anything(self):
        assert not ChaosPlan().injects_anything
        assert ChaosPlan(error_rate=0.1).injects_anything
        assert ChaosPlan(events=(ChaosEvent(1, 0, "error"),)).injects_anything


class TestDraws:
    def test_draw_is_pure_and_order_independent(self):
        plan = ChaosPlan(seed=7, error_rate=0.2, stall_rate=0.1,
                         corrupt_rate=0.2, slow_rate=0.2)
        forward = [plan.draw(r, a) for r in range(40) for a in range(3)]
        backward = [
            plan.draw(r, a)
            for r in reversed(range(40))
            for a in reversed(range(3))
        ]
        assert forward == list(reversed(backward))
        assert len({k for k in forward if k}) > 1  # several kinds appear

    def test_rates_shape_the_mix(self):
        plan = ChaosPlan(seed=3, error_rate=0.5)
        draws = [plan.draw(r, 0) for r in range(400)]
        frac = sum(1 for d in draws if d == "error") / len(draws)
        assert 0.35 < frac < 0.65
        assert all(d in (None, "error") for d in draws)

    def test_pinned_events_override_rates(self):
        plan = ChaosPlan(seed=0, events=(ChaosEvent(7, 1, "corrupt"),))
        assert plan.draw(7, 1) == "corrupt"
        assert plan.draw(7, 0) is None

    def test_clean_after_caps_faulty_attempts(self):
        plan = ChaosPlan(seed=1, error_rate=1.0, max_faulty_attempts=2)
        assert plan.draw(5, 0) == "error"
        assert plan.draw(5, 1) == "error"
        assert plan.draw(5, 2) is None

    def test_roots_filter_restricts_rate_faults(self):
        plan = ChaosPlan(seed=1, error_rate=1.0, roots=(3,))
        assert plan.draw(3, 0) == "error"
        assert plan.draw(4, 0) is None


class TestCorruption:
    def test_corruption_is_deterministic_and_detectable(self, rmat1_small):
        root = int(choose_roots(rmat1_small, 1, seed=0)[0])
        clean = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                           num_ranks=2, threads_per_rank=2).distances
        plan = ChaosPlan(seed=5, corrupt_rate=1.0)
        bad1 = plan.corrupt_distances(clean, root, 0)
        bad2 = plan.corrupt_distances(clean, root, 0)
        assert np.array_equal(bad1, bad2)  # same (seed, root, attempt)
        assert not np.array_equal(bad1, clean)
        report = validate_sssp_structure(rmat1_small, root, bad1)
        assert not report.valid

    def test_root_only_reachable_still_detectable(self, disconnected_graph):
        # vertex 4 is isolated: only the root itself is finite
        clean = solve_sssp(disconnected_graph, 4, algorithm="delta", delta=25,
                           num_ranks=2, threads_per_rank=2).distances
        plan = ChaosPlan(seed=5)
        bad = plan.corrupt_distances(clean, 4, 0)
        assert bad[4] != 0  # root rule violated
        assert not validate_sssp_structure(disconnected_graph, 4, bad).valid


class TestChaosSolver:
    def test_error_and_stall_raise_typed(self, path_graph):
        solver = ChaosSolver(
            make_solver(path_graph),
            ChaosPlan(events=(ChaosEvent(0, 0, "error"),
                              ChaosEvent(0, 1, "stall"))),
        )
        with pytest.raises(InjectedFault) as info:
            solver.solve(0, attempt=0)
        assert (info.value.root, info.value.attempt) == (0, 0)
        with pytest.raises(SolveTimeout) as info:
            solver.solve(0, attempt=1)
        assert info.value.root == 0
        assert solver.log == [(0, 0, "error"), (0, 1, "stall")]

    def test_corrupt_perturbs_solve_output(self, rmat1_small):
        root = int(choose_roots(rmat1_small, 1, seed=0)[0])
        plain = make_solver(rmat1_small)
        clean = plain.solve(root).distances
        solver = ChaosSolver(
            plain, ChaosPlan(events=(ChaosEvent(root, 0, "corrupt"),))
        )
        res = solver.solve(root, attempt=0)
        assert not np.array_equal(res.distances, clean)

    def test_clean_attempt_is_bit_identical(self, rmat1_small):
        root = int(choose_roots(rmat1_small, 1, seed=0)[0])
        plain = make_solver(rmat1_small)
        solver = ChaosSolver(plain, ChaosPlan(error_rate=1.0,
                                              max_faulty_attempts=1))
        with pytest.raises(InjectedFault):
            solver.solve(root, attempt=0)
        res = solver.solve(root, attempt=1)
        assert np.array_equal(res.distances, plain.solve(root).distances)

    def test_auto_attempt_counter_advances(self, path_graph):
        solver = ChaosSolver(
            make_solver(path_graph),
            ChaosPlan(events=(ChaosEvent(0, 0, "error"),)),
        )
        with pytest.raises(InjectedFault):
            solver.solve(0)  # auto attempt 0
        solver.solve(0)  # auto attempt 1: clean
        assert solver.log == [(0, 0, "error")]

    def test_delegates_solver_coordinates(self, path_graph):
        plain = make_solver(path_graph)
        solver = ChaosSolver(plain, ChaosPlan())
        assert solver.machine is plain.machine
        assert solver.config is plain.config
        assert solver.algorithm == plain.algorithm


class TestFromSpec:
    def test_round_trip(self):
        plan = ChaosPlan.from_spec(
            "error=0.1,stall=0.05,corrupt=0.1,slow=0.2,slow-ms=5,seed=3,"
            "clean-after=2,inject=error@7x0+corrupt@3x1,roots=1+2+3"
        )
        assert plan.error_rate == 0.1
        assert plan.stall_rate == 0.05
        assert plan.corrupt_rate == 0.1
        assert plan.slow_rate == 0.2
        assert plan.slow_s == pytest.approx(0.005)
        assert plan.seed == 3
        assert plan.max_faulty_attempts == 2
        assert plan.events == (ChaosEvent(7, 0, "error"),
                               ChaosEvent(3, 1, "corrupt"))
        assert plan.roots == (1, 2, 3)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            ChaosPlan.from_spec("meteors=1.0")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            ChaosPlan.from_spec("error")
