"""Serving benchmark: micro-batching + cache vs one-solve-per-request.

The PR 5 baseline (DESIGN.md §11). Drives the same Zipf-skewed
closed-loop workload through the :class:`~repro.serve.broker.QueryBroker`
in two shapes:

- **baseline** — ``max_batch_size=1``, cache disabled: every request is
  its own engine solve, the pre-serving behavior a caller hand-rolling
  ``solve_sssp`` per query would get;
- **batched-k** — a batch-size curve (k = 2..max) with the distance
  cache on: duplicate roots coalesce within a batch window and hot roots
  hit the cache, which is where a skewed workload's throughput comes
  from.

Reports throughput (qps) and tail latency (p50/p99) per variant plus the
cache-hit vs cold-solve latency split of the largest batched variant.

Standalone usage::

    python benchmarks/bench_serving.py --scale tiny --out bench_tiny.json
    python benchmarks/bench_serving.py --scale default --update BENCH_PR5.json
    python benchmarks/bench_serving.py --scale tiny --check

``--check`` is the CI ``serve-smoke`` gate; it is self-contained (no
committed baseline needed) and fails unless

1. the best batched variant's throughput beats the unbatched baseline's
   (micro-batching must pay for itself on a Zipf workload), and
2. the cache-hit p50 latency is measurably below the cold-solve p50
   (at most ``HIT_LATENCY_CEILING`` of it).

``--overhead-check`` is the CI ``chaos-smoke`` gate (DESIGN.md §12): it
runs the same workload with the resilience machinery armed (retries +
circuit breaker + cache checksums) but **no chaos**, interleaved
best-of-3 against the resilience-off shape, and fails unless

1. answers under the armed broker are bit-identical to offline
   ``solve_sssp`` calls (resilience must be invisible when nothing
   fails), and
2. armed throughput is within ``--max-overhead-pct`` (default 2%) of
   the resilience-off throughput.

``--obs-overhead-check`` is the CI ``obs-serve-smoke`` gate (DESIGN.md
§14): the same paired shape, but arming the request-scoped observability
layer (wide events + latency exemplars) instead of resilience — the
observed system must stay bit-identical, emit exactly one wide event per
offered request, and cost under ``--max-overhead-pct`` of throughput.
With ``--out`` it publishes the ``BENCH_PR9.json`` payload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    cached_rmat,
    default_machine,
    load_bench_json,
    print_table,
    write_bench_json,
)
from repro.serve import QueryBroker, WorkloadSpec, run_workload
from repro.serve.slo import percentile

SCALE_LABELS = {"tiny": 10, "default": 14}
REQUESTS = {"tiny": 120, "default": 400}

#: CI gate: batched throughput must exceed baseline throughput by this factor.
THROUGHPUT_FLOOR = 1.10
#: CI gate: cache-hit p50 latency must be at most this fraction of the
#: cold-solve p50.
HIT_LATENCY_CEILING = 0.5

BATCH_CURVE = (2, 4, 8, 16)


def _run_variant(
    graph,
    spec: WorkloadSpec,
    *,
    machine,
    batch_size: int,
    cache_bytes: int,
    workers: int,
) -> dict:
    """One broker configuration through the workload; returns a run row."""
    broker = QueryBroker(
        graph,
        algorithm="opt",
        delta=25,
        machine=machine,
        capacity=max(spec.num_requests, 256),
        max_batch_size=batch_size,
        flush_interval_s=0.002,
        num_workers=workers,
        cache_bytes=cache_bytes,
    )
    try:
        report = run_workload(broker, spec)
    finally:
        broker.shutdown(drain=True)
    row = {
        "batch_size": batch_size,
        "cache": cache_bytes > 0,
        "completed": report["completed"],
        "shed": report["shed"],
        "throughput_qps": report["throughput_qps"],
        "p50_s": report["p50_s"],
        "p99_s": report["p99_s"],
        "mean_batch_size": report["mean_batch_size"],
        "solves": report["solves"],
        "cache_hit_rate": report["cache_hit_rate"],
    }
    # Exact per-source percentiles for the hit-vs-cold latency split.
    for source in ("cache", "solve"):
        samples = broker.latency.samples(source)
        if samples:
            row[f"p50_{source}_s"] = percentile(samples, 50)
    return row


def run_suite(
    scale_label: str, *, num_ranks: int, workers: int, requests: int | None
) -> dict:
    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )
    cache_bytes = 64 << 20
    runs = []
    baseline = _run_variant(
        graph, spec, machine=machine, batch_size=1, cache_bytes=0,
        workers=workers,
    )
    baseline["variant"] = "baseline"
    runs.append(baseline)
    for k in BATCH_CURVE:
        row = _run_variant(
            graph, spec, machine=machine, batch_size=k,
            cache_bytes=cache_bytes, workers=workers,
        )
        row["variant"] = f"batched-{k}"
        row["speedup_vs_baseline"] = (
            row["throughput_qps"] / baseline["throughput_qps"]
        )
        runs.append(row)
    for run in runs:
        run["scale_label"] = scale_label
        run["scale"] = scale
    return {
        "schema": 1,
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "workload": {
            "arrival": spec.arrival,
            "num_requests": spec.num_requests,
            "concurrency": spec.concurrency,
            "zipf_s": spec.zipf_s,
            "root_universe": spec.root_universe,
            "seed": spec.seed,
        },
        "runs": runs,
    }


def check_gates(payload: dict) -> list[str]:
    """The self-contained CI gate (see module docstring)."""
    failures: list[str] = []
    runs = payload["runs"]
    baseline = next(r for r in runs if r["variant"] == "baseline")
    batched = [r for r in runs if r["variant"] != "baseline"]
    best = max(batched, key=lambda r: r["throughput_qps"])
    if best["throughput_qps"] < baseline["throughput_qps"] * THROUGHPUT_FLOOR:
        failures.append(
            f"batched throughput {best['throughput_qps']:.1f} qps "
            f"({best['variant']}) < {THROUGHPUT_FLOOR:.2f}x baseline "
            f"{baseline['throughput_qps']:.1f} qps"
        )
    split = [r for r in batched if "p50_cache_s" in r and "p50_solve_s" in r]
    if not split:
        failures.append("no batched variant observed both cache hits and solves")
    for run in split:
        ceiling = run["p50_solve_s"] * HIT_LATENCY_CEILING
        if run["p50_cache_s"] > ceiling:
            failures.append(
                f"{run['variant']}: cache-hit p50 {run['p50_cache_s'] * 1e3:.3f} ms "
                f"not measurably below cold-solve p50 "
                f"{run['p50_solve_s'] * 1e3:.3f} ms "
                f"(ceiling {HIT_LATENCY_CEILING:.0%})"
            )
    return failures


def _resilience_kwargs() -> dict:
    """The armed-but-quiet broker shape gated by ``--overhead-check``."""
    from repro.serve.breaker import BreakerConfig
    from repro.serve.retry import RetryPolicy

    return {
        "retry": RetryPolicy(max_attempts=3, backoff_base_s=0.001),
        "breaker": BreakerConfig(failure_threshold=3, recovery_time_s=0.25),
    }


def run_overhead_check(
    scale_label: str,
    *,
    num_ranks: int,
    workers: int,
    requests: int | None,
    max_overhead_pct: float,
    trials: int = 5,
) -> list[str]:
    """Resilience-off vs armed-no-chaos, paired over ``trials`` rounds.

    Throughput at tiny scale is noisy (sub-second runs), so the gate is
    computed from *paired* trials: each round runs both shapes back to
    back and contributes one on/off ratio; the median ratio is gated.
    Machine drift between rounds cancels out of each pair.
    """
    from repro.core.solver import solve_sssp
    from repro.graph.roots import choose_roots

    import numpy as np

    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )

    def one_trial(armed: bool) -> float:
        broker = QueryBroker(
            graph,
            algorithm="opt",
            delta=25,
            machine=machine,
            capacity=max(spec.num_requests, 256),
            max_batch_size=8,
            flush_interval_s=0.002,
            num_workers=workers,
            cache_bytes=64 << 20,
            **(_resilience_kwargs() if armed else {}),
        )
        try:
            report = run_workload(broker, spec)
            if armed:  # answers must be unchanged while armed
                for root in choose_roots(graph, 3, seed=7):
                    served = broker.query(int(root))
                    offline = solve_sssp(
                        graph, int(root), algorithm="opt", delta=25,
                        machine=machine,
                    )
                    assert np.array_equal(
                        served.distances, offline.distances
                    ), f"armed broker diverged from offline solve at {root}"
        finally:
            broker.shutdown(drain=True)
        return report["throughput_qps"]

    one_trial(False)  # untimed warmup: imports, graph + solver caches
    ratios, off_qps, on_qps = [], [], []
    for _ in range(trials):
        off = one_trial(False)
        on = one_trial(True)
        off_qps.append(off)
        on_qps.append(on)
        ratios.append(on / off)
    ratio = sorted(ratios)[len(ratios) // 2]
    print(
        f"overhead check ({scale_label}): resilience-off {max(off_qps):.1f} "
        f"qps, armed-no-chaos {max(on_qps):.1f} qps; paired median ratio "
        f"{ratio:.4f} ({(1 - ratio) * 100:+.2f}% overhead over "
        f"{trials} rounds)"
    )
    failures = []
    if ratio < 1.0 - max_overhead_pct / 100.0:
        failures.append(
            f"armed-no-chaos throughput is more than {max_overhead_pct:.1f}% "
            f"below resilience-off (paired median ratio {ratio:.4f}; "
            f"off {off_qps}, on {on_qps})"
        )
    return failures


def run_obs_overhead_check(
    scale_label: str,
    *,
    num_ranks: int,
    workers: int,
    requests: int | None,
    max_overhead_pct: float,
    trials: int = 5,
    out: str | None = None,
) -> list[str]:
    """Observability-off vs wide-events-armed, paired (DESIGN.md §14).

    The ISSUE 9 gate: arming request contexts + wide events + latency
    exemplars must stay **bit-identical** (the observed system is the
    same system) and within ``max_overhead_pct`` of the unobserved
    throughput, measured as the paired median ratio like the resilience
    gate above. Also asserts the structural wide-event invariant — one
    event per offered request — on every armed trial. With ``out``, the
    payload (ratios and per-trial qps) is written as the ``BENCH_PR9``
    baseline.
    """
    from repro.core.solver import solve_sssp
    from repro.graph.roots import choose_roots
    from repro.serve.events import WideEventLog

    import numpy as np

    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    if requests is None:
        requests = REQUESTS.get(scale_label, 200)
    graph = cached_rmat(scale, "rmat1")
    machine = default_machine(num_ranks, threads_per_rank=8)
    spec = WorkloadSpec(
        num_requests=requests,
        arrival="closed",
        concurrency=4,
        zipf_s=1.2,
        root_universe=32,
        seed=5,
    )

    def one_trial(armed: bool) -> float:
        events = WideEventLog() if armed else None
        broker = QueryBroker(
            graph,
            algorithm="opt",
            delta=25,
            machine=machine,
            capacity=max(spec.num_requests, 256),
            max_batch_size=8,
            flush_interval_s=0.002,
            num_workers=workers,
            cache_bytes=64 << 20,
            events=events,
        )
        try:
            report = run_workload(broker, spec)
            if armed:
                # structural invariant: one wide event per offered request
                assert events.emitted == report["offered"], (
                    f"{events.emitted} wide events for "
                    f"{report['offered']} offered requests"
                )
                # exemplars must have landed on the latency histogram
                assert any(
                    broker.registry.exemplars(
                        "serve_request_latency_seconds", source=source
                    )
                    for source in ("cache", "solve", "coalesced")
                ), "armed run produced no latency exemplars"
                # and the observed system must be the same system
                for root in choose_roots(graph, 3, seed=7):
                    served = broker.query(int(root))
                    offline = solve_sssp(
                        graph, int(root), algorithm="opt", delta=25,
                        machine=machine,
                    )
                    assert np.array_equal(
                        served.distances, offline.distances
                    ), f"observed broker diverged from offline solve at {root}"
        finally:
            broker.shutdown(drain=True)
        return report["throughput_qps"]

    one_trial(False)  # untimed warmup
    ratios, off_qps, on_qps = [], [], []
    for _ in range(trials):
        off = one_trial(False)
        on = one_trial(True)
        off_qps.append(off)
        on_qps.append(on)
        ratios.append(on / off)
    ratio = sorted(ratios)[len(ratios) // 2]
    print(
        f"observability overhead ({scale_label}): disabled {max(off_qps):.1f} "
        f"qps, events+exemplars armed {max(on_qps):.1f} qps; paired median "
        f"ratio {ratio:.4f} ({(1 - ratio) * 100:+.2f}% overhead over "
        f"{trials} rounds)"
    )
    if out:
        write_bench_json(out, {
            "schema": 1,
            "gate": "obs-overhead",
            "scale_label": scale_label,
            "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
            "trials": trials,
            "max_overhead_pct": max_overhead_pct,
            "disabled_qps": off_qps,
            "armed_qps": on_qps,
            "ratios": ratios,
            "paired_median_ratio": ratio,
        })
    failures = []
    if ratio < 1.0 - max_overhead_pct / 100.0:
        failures.append(
            f"events-armed throughput is more than {max_overhead_pct:.1f}% "
            f"below observability-off (paired median ratio {ratio:.4f}; "
            f"off {off_qps}, on {on_qps})"
        )
    return failures


def merge_into_baseline(current: dict, baseline: dict) -> dict:
    """Replace rows matched by (scale_label, variant); keep the rest."""
    fresh = {(r["scale_label"], r["variant"]): r for r in current["runs"]}
    kept = [
        r
        for r in baseline.get("runs", [])
        if (r["scale_label"], r["variant"]) not in fresh
    ]
    merged = dict(baseline) if baseline else {}
    merged["schema"] = current["schema"]
    merged["machine"] = current["machine"]
    merged["workload"] = current["workload"]
    merged["runs"] = sorted(
        kept + list(fresh.values()),
        key=lambda r: (r["scale_label"], r["batch_size"]),
    )
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="default",
        help="'tiny' (2^10), 'default' (2^14) or an explicit log2 vertex count",
    )
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--workers", type=int, default=1,
                        help="broker worker threads (default 1)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the per-scale request count")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--update", help="merge results into this baseline JSON (create if absent)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless batching beats the unbatched baseline and "
             "cache hits are measurably faster than cold solves",
    )
    parser.add_argument(
        "--overhead-check",
        action="store_true",
        help="gate only: armed-no-chaos resilience must stay bit-identical "
             "and within --max-overhead-pct of resilience-off throughput",
    )
    parser.add_argument(
        "--obs-overhead-check",
        action="store_true",
        help="gate only: wide events + exemplars armed must stay "
             "bit-identical and within --max-overhead-pct of "
             "observability-off throughput (writes --out as the "
             "BENCH_PR9 payload when given)",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=2.0,
        help="allowed armed-no-chaos throughput regression (default 2%%)",
    )
    args = parser.parse_args(argv)

    if args.obs_overhead_check:
        failures = run_obs_overhead_check(
            args.scale, num_ranks=args.ranks, workers=args.workers,
            requests=args.requests, max_overhead_pct=args.max_overhead_pct,
            out=args.out,
        )
        for failure in failures:
            print(f"OBS OVERHEAD GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("obs overhead gate: OK (wide events armed, bit-identical, "
              "within budget)")
        return 0

    if args.overhead_check:
        failures = run_overhead_check(
            args.scale, num_ranks=args.ranks, workers=args.workers,
            requests=args.requests, max_overhead_pct=args.max_overhead_pct,
        )
        for failure in failures:
            print(f"OVERHEAD GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("overhead gate: OK (resilience armed, bit-identical, "
              "within budget)")
        return 0

    payload = run_suite(
        args.scale, num_ranks=args.ranks, workers=args.workers,
        requests=args.requests,
    )
    rows = []
    for run in payload["runs"]:
        row = {
            "variant": run["variant"],
            "qps": f"{run['throughput_qps']:.1f}",
            "p50 ms": f"{run['p50_s'] * 1e3:.3f}",
            "p99 ms": f"{run['p99_s'] * 1e3:.3f}",
            "hit rate": f"{run['cache_hit_rate']:.2f}",
            "solves": run["solves"],
            "mean batch": f"{run['mean_batch_size']:.2f}",
        }
        if "speedup_vs_baseline" in run:
            row["vs baseline"] = f"{run['speedup_vs_baseline']:.2f}x"
        if "p50_cache_s" in run and "p50_solve_s" in run:
            row["hit/cold p50"] = (
                f"{run['p50_cache_s'] * 1e3:.3f}/"
                f"{run['p50_solve_s'] * 1e3:.3f} ms"
            )
        rows.append(row)
    print_table(
        rows, f"Serving: batched + cached vs unbatched baseline ({args.scale})"
    )

    if args.out:
        write_bench_json(args.out, payload)
    if args.update:
        base = load_bench_json(args.update) if Path(args.update).exists() else {}
        write_bench_json(args.update, merge_into_baseline(payload, base))
    if args.check:
        failures = check_gates(payload)
        for failure in failures:
            print(f"SERVE GATE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("serving gate: OK (batching beats baseline; hits beat cold solves)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
