"""Fig. 9 — Δ-stepping performance across Δ (RMAT-1, weak scaling).

The paper sweeps Δ from 1 (Dijkstra/Dial) to ∞ (Bellman-Ford): both
extremes perform poorly — Dijkstra drowns in buckets, Bellman-Ford in
redundant relaxations — and Δ between 10 and 50 is best. We reproduce the
sweep at several weak-scaling points and check the U-shape.
"""

from __future__ import annotations

import functools

import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.analysis.sweep import delta_sweep
from repro.core.config import DELTA_INFINITY

DELTAS = (1, 5, 10, 25, 40, 100, DELTA_INFINITY)
NODE_COUNTS = (4, 16)


def _label(delta: int) -> str:
    return "inf" if delta >= DELTA_INFINITY else str(delta)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat1")
        root = choose_root(graph, seed=0)
        machine = default_machine(nodes)
        for r in delta_sweep(
            graph, root, DELTAS, algorithm="delta",
            num_ranks=nodes, threads_per_rank=machine.threads_per_rank,
        ):
            rows.append(
                {
                    "nodes": nodes,
                    "scale": scale,
                    "delta": _label(r["delta"]),
                    "gteps": r["gteps"],
                    "buckets": r["buckets"],
                    "relaxations": r["relaxations"],
                }
            )
    return rows


def test_fig09_delta_sweep(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 9 — Δ-stepping GTEPS vs Δ (RMAT-1)")
    for nodes in NODE_COUNTS:
        sub = {r["delta"]: r["gteps"] for r in rows if r["nodes"] == nodes}
        best_mid = max(sub[d] for d in ("10", "25", "40"))
        # both extremes lose to the mid-range (the paper's U-shape)
        assert best_mid > sub["1"]
        assert best_mid > sub["inf"]


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 9 — Δ-stepping GTEPS vs Δ (RMAT-1)")
