"""SSSP-powered centrality measures.

The paper motivates SSSP with complex-network analysis, citing Brandes'
betweenness algorithm and Freeman's closeness measure (refs [1], [2]).
Both reduce to repeated single-source shortest-path computations, so they
double as realistic multi-root workloads for the solver:

- **closeness** — ``(r - 1) / sum(d)`` over the ``r`` vertices reached from
  the source (the Wasserman–Faust generalisation handles disconnected
  graphs by scaling with the reached fraction);
- **betweenness** — Brandes' algorithm generalised to weighted graphs: per
  source, count shortest paths ``sigma`` forward over the shortest-path
  DAG in increasing distance order, then accumulate dependencies ``delta``
  backward. Both sweeps are vectorised per distance level.
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import INF
from repro.core.paths import predecessor_arcs
from repro.core.solver import BatchSolver, solve_sssp
from repro.graph.csr import CSRGraph
from repro.graph.roots import choose_roots

__all__ = ["closeness_centrality", "betweenness_centrality", "sssp_distances"]


def sssp_distances(graph: CSRGraph, source: int, **solver_kwargs) -> np.ndarray:
    """Distances from ``source`` using the distributed solver."""
    solver_kwargs.setdefault("algorithm", "opt")
    solver_kwargs.setdefault("delta", 25)
    solver_kwargs.setdefault("num_ranks", 4)
    solver_kwargs.setdefault("threads_per_rank", 4)
    return solve_sssp(graph, source, **solver_kwargs).distances


def _batch_solver(graph: CSRGraph, solver_kwargs: dict) -> BatchSolver:
    """Multi-source pipelines share one preprocessed solver."""
    kwargs = dict(solver_kwargs)
    kwargs.setdefault("algorithm", "opt")
    kwargs.setdefault("delta", 25)
    kwargs.setdefault("num_ranks", 4)
    kwargs.setdefault("threads_per_rank", 4)
    return BatchSolver(graph, **kwargs)


def closeness_centrality(
    graph: CSRGraph,
    sources: np.ndarray | None = None,
    *,
    num_sources: int = 16,
    seed: int = 0,
    **solver_kwargs,
) -> dict[int, float]:
    """Wasserman–Faust closeness of the given (or sampled) sources.

    ``c(v) = ((r - 1) / sum_d) * ((r - 1) / (n - 1))`` with ``r`` the number
    of vertices reached from ``v`` — 0 for isolated sources.
    """
    n = graph.num_vertices
    if sources is None:
        sources = choose_roots(graph, num_sources, seed=seed)
    solver = _batch_solver(graph, solver_kwargs)
    out: dict[int, float] = {}
    for s in np.asarray(sources, dtype=np.int64):
        d = solver.solve(int(s)).distances
        reached = d < INF
        r = int(reached.sum())
        if r <= 1 or n <= 1:
            out[int(s)] = 0.0
            continue
        total = float(d[reached].sum())
        out[int(s)] = ((r - 1) / total) * ((r - 1) / (n - 1))
    return out


def _level_order(d: np.ndarray, vertices: np.ndarray) -> list[np.ndarray]:
    """Group ``vertices`` by distance value, ascending."""
    dv = d[vertices]
    order = np.argsort(dv, kind="stable")
    sorted_v = vertices[order]
    sorted_d = dv[order]
    boundaries = np.nonzero(np.diff(sorted_d))[0] + 1
    return np.split(sorted_v, boundaries)


def betweenness_centrality(
    graph: CSRGraph,
    sources: np.ndarray | None = None,
    *,
    num_sources: int = 16,
    seed: int = 0,
    normalized: bool = True,
    **solver_kwargs,
) -> np.ndarray:
    """Approximate weighted betweenness via Brandes over sampled sources.

    For every sampled source: solve SSSP, extract the shortest-path DAG
    (tight arcs), sweep forward per distance level to count shortest paths
    ``sigma``, then backward to accumulate dependencies ``delta`` and add
    them into the betweenness scores. With ``sources=None`` samples
    ``num_sources`` roots (the standard Brandes–Pich approximation);
    passing all vertices yields exact betweenness.
    """
    if graph.weights.size and graph.weights.min() == 0:
        # Zero-weight arcs connect equal-distance vertices, breaking the
        # per-level batching of the sigma sweep (paths could thread within
        # a level). Positive weights are the paper's setting anyway.
        raise ValueError("betweenness requires strictly positive weights")
    n = graph.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    if sources is None:
        sources = choose_roots(graph, num_sources, seed=seed)
    sources = np.asarray(sources, dtype=np.int64)
    solver = _batch_solver(graph, solver_kwargs)

    for s in sources:
        d = solver.solve(int(s)).distances
        reached = np.nonzero(d < INF)[0]
        if reached.size <= 1:
            continue
        dag_tails, dag_heads = predecessor_arcs(graph, d)
        # Forward sweep: sigma in increasing distance order. All tails of
        # arcs into a level have strictly smaller distance, so levels can
        # be batched with np.add.at.
        sigma = np.zeros(n, dtype=np.float64)
        sigma[s] = 1.0
        arc_order = np.argsort(d[dag_heads], kind="stable")
        dag_tails = dag_tails[arc_order]
        dag_heads = dag_heads[arc_order]
        head_d = d[dag_heads]
        level_bounds = np.nonzero(np.diff(head_d))[0] + 1
        tail_groups = np.split(dag_tails, level_bounds)
        head_groups = np.split(dag_heads, level_bounds)
        for tg, hg in zip(tail_groups, head_groups):
            np.add.at(sigma, hg, sigma[tg])
        # Backward sweep: delta in decreasing distance order.
        delta = np.zeros(n, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            for tg, hg in zip(reversed(tail_groups), reversed(head_groups)):
                contrib = sigma[tg] / sigma[hg] * (1.0 + delta[hg])
                np.add.at(delta, tg, contrib)
        delta[s] = 0.0
        bc += delta

    if normalized and n > 2:
        # Raw accumulation over all sources counts each unordered pair
        # twice; the 1/((n-1)(n-2)) scale absorbs that (the networkx
        # convention), with n/|sources| extrapolating sampled sources.
        bc *= (n / max(len(sources), 1)) / ((n - 1) * (n - 2))
    else:
        # Unnormalised undirected convention: each pair counted once.
        bc /= 2.0
    return bc
