"""Fig. 10(a)-(d) — RMAT-1 analysis of Del-25 vs Prune-25 vs OPT-25.

The paper's panel shows, on RMAT-1 weak scaling:

(a) GTEPS — pruning gives ~5x over the baseline, hybridization another
    ~30 %, OPT-25 ≈ 8x the baseline at 2,048 nodes;
(b) time breakdown — pruning attacks the relaxation time (OtherTime),
    hybridization nearly eliminates the bucket overhead (BktTime);
(c) relaxations per thread — pruning cuts them by ~6x;
(d) number of buckets — Del-25 uses ~30, the hybrid converges in <= 5,
    insensitive to scale.
"""

from __future__ import annotations

import functools

import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)

ALGORITHMS = [("Del-25", "delta"), ("Prune-25", "prune"), ("OPT-25", "opt")]
NODE_COUNTS = (2, 8, 32)
FAMILY = "rmat1"


@functools.lru_cache(maxsize=2)
def compute_rows(family: str = FAMILY):
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, family)
        root = choose_root(graph, seed=0)
        machine = default_machine(nodes)
        for label, name in ALGORITHMS:
            res = run_algorithm(graph, root, name, 25, machine)
            total_threads = machine.total_threads
            rows.append(
                {
                    "nodes": nodes,
                    "scale": scale,
                    "algorithm": label,
                    "gteps": res.gteps,
                    "bkt_ms": res.cost.bucket_time * 1e3,
                    "other_ms": res.cost.other_time * 1e3,
                    "relax_per_thread": res.metrics.total_relaxations
                    / total_threads,
                    "buckets": res.metrics.buckets_processed,
                }
            )
    return rows


def _at(rows, nodes, algorithm):
    return next(
        r for r in rows if r["nodes"] == nodes and r["algorithm"] == algorithm
    )


def test_fig10a_gteps(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 10 — RMAT-1: Del-25 vs Prune-25 vs OPT-25")
    for nodes in NODE_COUNTS:
        del_, opt = _at(rows, nodes, "Del-25"), _at(rows, nodes, "OPT-25")
        assert opt["gteps"] > 1.5 * del_["gteps"]


def test_fig10b_time_breakdown(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    nodes = NODE_COUNTS[-1]
    del_ = _at(rows, nodes, "Del-25")
    prune = _at(rows, nodes, "Prune-25")
    opt = _at(rows, nodes, "OPT-25")
    # pruning attacks OtherTime, keeps BktTime roughly unchanged
    assert prune["other_ms"] < del_["other_ms"]
    assert prune["bkt_ms"] == pytest.approx(del_["bkt_ms"], rel=0.35)
    # hybridization attacks BktTime
    assert opt["bkt_ms"] < 0.5 * prune["bkt_ms"]


def test_fig10c_relaxations(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    for nodes in NODE_COUNTS:
        del_ = _at(rows, nodes, "Del-25")
        prune = _at(rows, nodes, "Prune-25")
        assert prune["relax_per_thread"] < del_["relax_per_thread"] / 1.5


def test_fig10d_buckets(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    opt_buckets = [_at(rows, n, "OPT-25")["buckets"] for n in NODE_COUNTS]
    del_buckets = [_at(rows, n, "Del-25")["buckets"] for n in NODE_COUNTS]
    # hybrid converges in a handful of buckets, scale-insensitive
    assert max(opt_buckets) <= 6
    assert max(opt_buckets) - min(opt_buckets) <= 3
    assert min(del_buckets) > max(opt_buckets)


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 10 — RMAT-1 analysis")
