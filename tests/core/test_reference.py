"""Unit tests for the sequential references and validation."""

import numpy as np
import pytest

from repro.core.distances import INF
from repro.core.reference import (
    DistanceMismatch,
    dijkstra_reference,
    scipy_reference,
    validate_distances,
)
from repro.graph.builder import from_undirected_edges


class TestDijkstraReference:
    def test_path_graph(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        assert list(d) == [0, 5, 8, 15, 16]

    def test_other_root(self, path_graph):
        d = dijkstra_reference(path_graph, 4)
        assert list(d) == [16, 11, 8, 1, 0]

    def test_diamond_shortcut(self, diamond_graph):
        d = dijkstra_reference(diamond_graph, 0)
        # 0-1 (1), 0-1-2 (2), 0-1-3 (2)
        assert list(d) == [0, 1, 2, 2]

    def test_disconnected(self, disconnected_graph):
        d = dijkstra_reference(disconnected_graph, 0)
        assert d[1] == 2
        assert d[2] == INF and d[3] == INF and d[4] == INF

    def test_zero_weight_edges(self):
        g = from_undirected_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([0, 3]), 3
        )
        d = dijkstra_reference(g, 0)
        assert list(d) == [0, 0, 3]

    def test_matches_networkx(self, rmat1_small):
        import networkx as nx

        g = rmat1_small
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_vertices))
        tails, heads, weights = g.to_edge_list()
        for t, h, w in zip(tails.tolist(), heads.tolist(), weights.tolist()):
            nxg.add_edge(t, h, weight=w)
        root = 1
        nx_dist = nx.single_source_dijkstra_path_length(nxg, root)
        ours = dijkstra_reference(g, root)
        for v in range(g.num_vertices):
            expected = nx_dist.get(v, None)
            if expected is None:
                assert ours[v] == INF
            else:
                assert ours[v] == expected


class TestScipyReference:
    def test_agrees_with_heap_dijkstra(self, rmat1_small):
        a = dijkstra_reference(rmat1_small, 3)
        b = scipy_reference(rmat1_small, 3)
        assert np.array_equal(a, b)

    def test_rejects_zero_weights(self):
        g = from_undirected_edges(np.array([0]), np.array([1]), np.array([0]), 2)
        with pytest.raises(ValueError, match="positive"):
            scipy_reference(g, 0)


class TestValidateDistances:
    def test_accepts_correct(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        validate_distances(d, path_graph, 0)

    def test_rejects_wrong_value(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[3] += 1
        with pytest.raises(DistanceMismatch, match="vertex 3"):
            validate_distances(d, path_graph, 0)

    def test_rejects_wrong_shape(self, path_graph):
        with pytest.raises(DistanceMismatch, match="shape"):
            validate_distances(np.zeros(3), path_graph, 0)

    def test_explicit_reference(self, path_graph):
        ref = dijkstra_reference(path_graph, 0)
        validate_distances(ref.copy(), path_graph, 0, reference=ref)
