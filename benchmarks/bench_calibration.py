"""Calibration — can any cost constants reproduce the paper's profile?

The cost model's constants are calibrated by hand; this bench asks the
sharper question: given the *counters* our algorithm produces, does there
exist any non-negative constant assignment under which the weak-scaling
time profile matches the paper's Fig. 12 profile (scaled to reproduction
size)? A good fit means the run's measured counters — not the constant
choices — carry the paper's shape; a poor fit would mean the shape was an
artifact of the defaults.

Fits the 7 constants by non-negative least squares over the LB-OPT-25
weak-scaling runs against targets proportional to the paper's RMAT-1
GTEPS column, and reports the relative RMS error and the fitted constants.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)
from repro.runtime.calibration import calibrate, retime

NODE_COUNTS = (4, 8, 16, 32, 64)

# Paper Fig. 12, RMAT-1 GTEPS at 1k..16k nodes (the shape, not the scale).
PAPER_PROFILE = {4: 173.0, 8: 331.0, 16: 653.0, 32: 1102.0, 64: 1870.0}


@functools.lru_cache(maxsize=1)
def compute():
    runs = []
    edge_counts = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat1")
        root = choose_root(graph, seed=0)
        res = run_algorithm(graph, root, "lb-opt", 25, default_machine(nodes))
        runs.append((res.metrics, nodes))
        edge_counts.append(graph.num_undirected_edges)
    # Targets: times implied by the paper's GTEPS profile, rescaled so the
    # first point matches our default model's time (shape-only fit).
    base_time = retime(runs[0][0], default_machine(NODE_COUNTS[0]))
    t0_paper = edge_counts[0] / PAPER_PROFILE[NODE_COUNTS[0]]
    scale_factor = base_time / t0_paper
    targets = [
        (m_edges / PAPER_PROFILE[nodes]) * scale_factor
        for nodes, m_edges in zip(NODE_COUNTS, edge_counts)
    ]
    fitted, err = calibrate(runs, targets)
    rows = []
    for (metrics, nodes), target, m_edges in zip(runs, targets, edge_counts):
        t = retime(metrics, fitted.with_ranks(nodes))
        rows.append(
            {
                "nodes": nodes,
                "target_ms": target * 1e3,
                "fitted_ms": t * 1e3,
                "rel_err": (t - target) / target,
                "gteps_fitted": m_edges / t / 1e9,
            }
        )
    return rows, err, fitted


def test_calibration_fits_paper_profile(benchmark):
    rows, err, fitted = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(rows, "Calibration — fit to the paper's Fig. 12 RMAT-1 profile")
    print(f"\nrelative RMS error: {err:.1%}")
    print(f"fitted constants: t_relax={fitted.t_relax:.2e}, "
          f"alpha={fitted.alpha:.2e}, beta={fitted.beta:.2e}, "
          f"allreduce=({fitted.t_allreduce_base:.2e}, "
          f"{fitted.t_allreduce_log:.2e})")
    # The counters can carry the paper's weak-scaling shape to within ~25%.
    assert err < 0.25


if __name__ == "__main__":
    rows, err, fitted = compute()
    print_table(rows, "Calibration — paper Fig. 12 profile fit")
    print(f"relative RMS error: {err:.1%}")
