"""Unit tests for the metrics registry and its Prometheus exposition."""

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", 1)
        reg.inc("requests_total", 2)
        assert reg.snapshot()["requests_total"] == 3

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("records_total", 1, kind="short")
        reg.inc("records_total", 4, kind="long")
        snap = reg.snapshot()
        assert snap['records_total{kind="short"}'] == 1
        assert snap['records_total{kind="long"}'] == 4

    def test_negative_delta_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests_total", -1)

    def test_family_clash_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1)
        with pytest.raises(ValueError):
            reg.set_gauge("x_total", 5)


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("temp", 1.0)
        reg.set_gauge("temp", 2.5)
        assert reg.snapshot()["temp"] == 2.5


class TestHistograms:
    def test_counts_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1e-5, buckets=(1e-5, 1e-3, 1.0))
        reg.observe("lat", 1e-4)
        h = reg.snapshot()["lat"]
        assert h["count"] == 2
        assert h["sum"] == pytest.approx(1.1e-4)
        # le=1e-05 covers only the first observation; the larger bounds both.
        assert h["buckets"]["1e-05"] == 1
        assert h["buckets"]["0.001"] == 2
        assert h["buckets"]["1"] == 2

    def test_default_buckets_used(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        assert len(reg.snapshot()["lat"]["buckets"]) == len(DEFAULT_BUCKETS)


class TestPrometheusText:
    def test_exposition_structure(self):
        reg = MetricsRegistry()
        reg.inc("records_total", 3, kind="short", help="records by kind")
        reg.set_gauge("wall_seconds", 1.5, help="wall time")
        reg.observe("epoch_seconds", 0.02, buckets=(0.01, 0.1))
        text = reg.prometheus_text()
        assert "# HELP records_total records by kind" in text
        assert "# TYPE records_total counter" in text
        assert 'records_total{kind="short"} 3' in text
        assert "# TYPE wall_seconds gauge" in text
        assert "wall_seconds 1.5" in text
        assert "# TYPE epoch_seconds histogram" in text
        assert 'epoch_seconds_bucket{le="0.01"} 0' in text
        assert 'epoch_seconds_bucket{le="0.1"} 1' in text
        assert 'epoch_seconds_bucket{le="+Inf"} 1' in text
        assert "epoch_seconds_count 1" in text
        assert text.endswith("\n")
