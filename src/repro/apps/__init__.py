"""Applications built on the SSSP core.

- :mod:`repro.apps.graph500` — the full Graph 500 SSSP benchmark protocol
  (generate, sample 64 search keys, solve, structurally validate, report
  harmonic-mean TEPS);
- :mod:`repro.apps.centrality` — closeness and (Brandes) betweenness
  centrality, the complex-network analyses the paper's introduction cites
  as SSSP consumers.
"""

from repro.apps.centrality import (
    betweenness_centrality,
    closeness_centrality,
)
from repro.apps.graph500 import Graph500Result, run_graph500

__all__ = [
    "Graph500Result",
    "betweenness_centrality",
    "closeness_centrality",
    "run_graph500",
]
