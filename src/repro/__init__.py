"""repro — reproduction of *Scalable Single Source Shortest Path Algorithms
for Massively Parallel Systems* (Chakaravarthy, Checconi, Petrini, Sabharwal;
IPDPS 2014).

The package implements the paper's distributed Δ-stepping SSSP family —
edge classification with the inner/outer-short refinement, push/pull
pruning with the decision heuristic, hybridization into Bellman-Ford, and
two-tier load balancing — on a simulated massively parallel machine with an
exact communication/work accounting layer and a Blue Gene/Q-flavoured
analytic cost model.

Quickstart::

    from repro import rmat_graph, solve_sssp

    g = rmat_graph(scale=14, seed=1)
    result = solve_sssp(g, root=0, algorithm="opt", delta=25,
                        num_ranks=8, threads_per_rank=8)
    print(result.gteps, result.metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.apps import (
    betweenness_centrality,
    closeness_centrality,
    run_graph500,
)
from repro.core import (
    BatchSolver,
    DELTA_INFINITY,
    INF,
    SolverConfig,
    SsspResult,
    build_parent_tree,
    dijkstra_reference,
    extract_path,
    preset,
    solve_sssp,
    split_heavy_vertices,
    validate_distances,
    validate_sssp_structure,
)
from repro.graph import (
    BlockPartition,
    CSRGraph,
    RMAT1,
    RMAT2,
    RMATParams,
    degree_stats,
    from_edges,
    from_undirected_edges,
    grid_graph,
    random_geometric_graph,
    rmat_graph,
    synthetic_social_graph,
    uniform_weights,
)
from repro.runtime import (
    BGQ_LIKE,
    MachineConfig,
    Metrics,
    evaluate_cost,
    simulated_gteps,
)
from repro.serve import (
    DistanceCache,
    QueryBroker,
    ServiceOverload,
    ServiceShutdown,
    WorkloadSpec,
)

__version__ = "1.0.0"

__all__ = [
    "BGQ_LIKE",
    "BatchSolver",
    "BlockPartition",
    "CSRGraph",
    "DELTA_INFINITY",
    "DistanceCache",
    "INF",
    "MachineConfig",
    "Metrics",
    "QueryBroker",
    "RMAT1",
    "RMAT2",
    "RMATParams",
    "ServiceOverload",
    "ServiceShutdown",
    "SolverConfig",
    "SsspResult",
    "WorkloadSpec",
    "__version__",
    "betweenness_centrality",
    "build_parent_tree",
    "closeness_centrality",
    "degree_stats",
    "extract_path",
    "run_graph500",
    "validate_sssp_structure",
    "dijkstra_reference",
    "evaluate_cost",
    "from_edges",
    "from_undirected_edges",
    "grid_graph",
    "preset",
    "random_geometric_graph",
    "rmat_graph",
    "simulated_gteps",
    "solve_sssp",
    "split_heavy_vertices",
    "synthetic_social_graph",
    "uniform_weights",
    "validate_distances",
]
