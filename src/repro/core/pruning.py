"""Long-edge phase: push and pull relaxation models (Section III-B).

After a bucket's short phases converge, its vertices are settled and one
long-edge phase runs. Two mechanisms exist:

**Push** — every just-settled vertex ``u`` sends ``d(u) + w`` along each of
its long arcs (plus, under IOS, its outer short arcs). Simple, but relaxes
self and backward arcs redundantly.

**Pull** — every *later-bucket* vertex ``v`` sends a request along each
incident arc satisfying eq. (1), ``w(e) < d(v) - kΔ``; owners of
current-bucket sources respond with the proposed distance. Self and
backward arcs are pruned for free (their endpoints are settled, so they
send no requests), at the price of request/response round trips.

The record-gathering helpers are shared with the exact push/pull cost
estimator (:mod:`repro.core.pushpull`), which prices both models without
mutating any state.

Both phase functions mutate the tentative-distance array and return the
changed vertices; relaxation counting follows the paper's fair-count
convention (push: one per record; pull: requests *and* responses each
count one).
"""

from __future__ import annotations

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.relax import apply_relaxations
from repro.runtime.comm import RELAX_RECORD_BYTES, REQUEST_RECORD_BYTES
from repro.runtime.metrics import ComputeKind
from repro.util.ranges import concat_ranges

__all__ = [
    "gather_push_records",
    "gather_pull_requests",
    "long_phase_push",
    "long_phase_pull",
    "member_mask",
    "later_vertices",
    "bucket_census",
]


def member_mask(ctx: ExecutionContext, members: np.ndarray) -> np.ndarray:
    """Boolean mask over all vertices marking the current bucket members."""
    mask = np.zeros(ctx.graph.num_vertices, dtype=bool)
    mask[members] = True
    return mask


def later_vertices(
    ctx: ExecutionContext, d: np.ndarray, settled: np.ndarray, k: int
) -> np.ndarray:
    """Unsettled vertices in buckets after ``k`` (including B-infinity)."""
    hi = (k + 1) * ctx.config.delta
    return np.nonzero(~settled & (d >= hi))[0].astype(np.int64)


# ----------------------------------------------------------------------
# Record gathering (shared by execution and exact cost estimation)
# ----------------------------------------------------------------------
def gather_push_records(
    ctx: ExecutionContext,
    d: np.ndarray,
    members: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialise the push-model records for bucket ``k``.

    Returns ``(src, dst, nd, scanned_units)`` where ``scanned_units`` is the
    per-member count of arcs examined (long arcs, plus short arcs when IOS
    must find the outer ones).
    """
    graph = ctx.graph
    delta = ctx.config.delta
    hi = (k + 1) * delta
    indptr, adj, weights = graph.indptr, graph.adj, graph.weights
    members = np.asarray(members, dtype=np.int64)
    if members.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)

    long_starts = indptr[members] + ctx.short_offsets[members]
    long_ends = indptr[members + 1]
    arcs, owner_idx = concat_ranges(long_starts, long_ends)
    src = members[owner_idx]
    dst = adj[arcs]
    nd = d[src] + weights[arcs]
    scanned_units = (long_ends - long_starts).astype(np.float64)

    if ctx.config.use_ios:
        # Outer short arcs: proposed distance falls past the current bucket
        # (the inner ones were already relaxed during the short phases).
        s_arcs, s_owner = concat_ranges(indptr[members], long_starts)
        s_src = members[s_owner]
        s_dst = adj[s_arcs]
        s_nd = d[s_src] + weights[s_arcs]
        outer = s_nd >= hi
        if ctx.guards is not None:
            ctx.guards.check_ios_coverage(int(s_arcs.size), int(s_nd.size))
            ctx.guards.check_ios_partition(s_nd, hi, ~outer)
        src = np.concatenate([src, s_src[outer]])
        dst = np.concatenate([dst, s_dst[outer]])
        nd = np.concatenate([nd, s_nd[outer]])
        scanned_units += ctx.short_offsets[members].astype(np.float64)
    return src, dst, nd, scanned_units


def gather_pull_requests(
    ctx: ExecutionContext,
    d: np.ndarray,
    later: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Materialise the pull-model requests for bucket ``k``.

    Returns ``(req_v, req_u, req_w, gen_units)``: one request per *incoming*
    arc of a later-bucket vertex passing the eq. (1) filter
    ``w(e) < d(v) - kΔ``, and the per-later-vertex generation work
    (matches + 1, the binary-search cost on weight-sorted adjacency). On
    undirected graphs the symmetrized forward lists double as the in-edge
    lists; on directed graphs the context's reverse graph supplies them.
    Under IOS requests cover short arcs too (that is how outer short edges
    are relaxed in the pull model); without IOS the short phases already
    relaxed every short arc, so only long arcs participate.
    """
    graph = ctx.in_graph
    lo = k * ctx.config.delta
    indptr, adj, weights = graph.indptr, graph.adj, graph.weights
    later = np.asarray(later, dtype=np.int64)
    if later.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, np.empty(0, dtype=np.float64)

    if ctx.config.use_ios:
        starts = indptr[later]
    else:
        starts = indptr[later] + ctx.in_short_offsets[later]
    ends = indptr[later + 1]
    arcs, owner_idx = concat_ranges(starts, ends)
    req_v = later[owner_idx]
    req_u = adj[arcs]
    req_w = weights[arcs]
    passes = req_w < d[req_v] - lo
    gen_units = np.bincount(owner_idx[passes], minlength=later.size).astype(
        np.float64
    )
    gen_units += 1.0
    return req_v[passes], req_u[passes], req_w[passes], gen_units


# ----------------------------------------------------------------------
# Phase execution
# ----------------------------------------------------------------------
def long_phase_push(
    ctx: ExecutionContext,
    d: np.ndarray,
    members: np.ndarray,
    k: int,
) -> tuple[np.ndarray, dict[str, int | str]]:
    """Push-model long phase for bucket ``k``; returns changed vertices."""
    members = np.asarray(members, dtype=np.int64)
    src, dst, nd, scanned = gather_push_records(ctx, d, members, k)
    if members.size == 0:
        ctx.metrics.note_phase("long", 0)
        return np.empty(0, dtype=np.int64), {"mode": "push", "relaxations": 0}
    ctx.charge(ComputeKind.LONG_PUSH_RELAX, members, scanned, phase_kind="long")
    ctx.comm.exchange_by_vertex(src, dst, RELAX_RECORD_BYTES, phase_kind="long")
    ctx.charge(
        ComputeKind.LONG_PUSH_RELAX, dst, None, phase_kind="long", count_as_relax=True
    )
    ctx.metrics.note_phase("long", dst.size)
    changed = apply_relaxations(d, dst, nd)
    return changed, {"mode": "push", "relaxations": int(dst.size)}


def long_phase_pull(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
) -> tuple[np.ndarray, dict[str, int | str]]:
    """Pull-model long phase for bucket ``k``; returns changed vertices.

    ``settled`` must already include the bucket members.
    """
    members = np.asarray(members, dtype=np.int64)
    later = later_vertices(ctx, d, settled, k)
    req_v, req_u, req_w, gen_units = gather_pull_requests(ctx, d, later, k)
    if later.size == 0:
        ctx.metrics.note_phase("long", 0)
        return np.empty(0, dtype=np.int64), {
            "mode": "pull",
            "relaxations": 0,
            "requests": 0,
            "responses": 0,
        }

    ctx.charge(ComputeKind.PULL_REQUEST, later, gen_units, phase_kind="long")
    ctx.comm.exchange_by_vertex(
        req_v, req_u, REQUEST_RECORD_BYTES, phase_kind="long"
    )
    # Request service at the source owner: check bucket membership of u.
    ctx.charge(
        ComputeKind.PULL_REQUEST, req_u, None, phase_kind="long", count_as_relax=True
    )

    in_current = member_mask(ctx, members)
    respond = in_current[req_u]
    resp_v = req_v[respond]
    resp_u = req_u[respond]
    nd = d[resp_u] + req_w[respond]
    ctx.comm.exchange_by_vertex(
        resp_u, resp_v, RELAX_RECORD_BYTES, phase_kind="long"
    )
    ctx.charge(
        ComputeKind.PULL_RESPONSE, resp_v, None, phase_kind="long", count_as_relax=True
    )
    ctx.metrics.note_phase("long", req_v.size + resp_v.size)
    changed = apply_relaxations(d, resp_v, nd)
    return changed, {
        "mode": "pull",
        "relaxations": int(req_v.size + resp_v.size),
        "requests": int(req_v.size),
        "responses": int(resp_v.size),
    }


# ----------------------------------------------------------------------
# Census (Fig. 7)
# ----------------------------------------------------------------------
def bucket_census(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
) -> dict[str, int]:
    """Exact per-bucket statistics of Fig. 7.

    Counts the long arcs of the current bucket's members split into self /
    backward / forward by the destination's bucket, and the exact number of
    pull requests eq. (1) would generate. ``settled`` must already include
    the members.
    """
    graph = ctx.graph
    delta = ctx.config.delta
    lo = k * delta
    hi = lo + delta
    indptr, adj = graph.indptr, graph.adj
    members = np.asarray(members, dtype=np.int64)
    out: dict[str, int] = {"bucket": k, "members": int(members.size)}

    if members.size:
        starts = indptr[members] + ctx.short_offsets[members]
        arcs, _ = concat_ranges(starts, indptr[members + 1])
        dst = adj[arcs]
        dd = d[dst]
        in_cur = (dd >= lo) & (dd < hi)
        # Destination classification: self = in current bucket range;
        # backward = settled and strictly before it; forward = the rest.
        self_ct = int((in_cur & settled[dst]).sum())
        backward_ct = int((settled[dst] & (dd < lo)).sum())
        forward_ct = int(dst.size - self_ct - backward_ct)
        out.update(
            self_edges=self_ct,
            backward_edges=backward_ct,
            forward_edges=forward_ct,
            push_relaxations=int(dst.size),
        )
    else:
        out.update(self_edges=0, backward_edges=0, forward_edges=0, push_relaxations=0)

    later = later_vertices(ctx, d, settled, k)
    req_v, req_u, _, _ = gather_pull_requests(ctx, d, later, k)
    out["pull_requests"] = int(req_v.size)
    if members.size and req_u.size:
        out["pull_responses"] = int(member_mask(ctx, members)[req_u].sum())
    else:
        out["pull_responses"] = 0
    return out
