"""Unit tests for the serve-top dashboard (snapshot/render/run split)."""

import io

from repro.obs.burnrate import BurnRateConfig, BurnRateMonitor
from repro.obs.request import RequestContext, request_id
from repro.serve import dashboard
from repro.serve.events import WideEventLog
from repro.serve.slo import LatencyWindow


class FakeClock:
    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class StubBreaker:
    def states(self):
        return {"solve": "open", "timeout": "closed"}


class StubChaos:
    def summary(self):
        return {"error": 3, "stall": 1}


class StubBroker:
    """Duck-typed stand-in exposing exactly what snapshot() reads."""

    def __init__(self, *, clock=None, events=None, breaker=None, chaos=None):
        self._clock = clock or FakeClock()
        self.latency = LatencyWindow(clock=self._clock)
        self.events = events
        self.breaker = breaker
        self.chaos = chaos
        self._report = {
            "offered": 10,
            "completed": 8,
            "shed": 1,
            "retries": 2,
            "hedges": 0,
            "queue_depth": 1,
            "batches": 4,
            "mean_batch_size": 2.0,
            "outcome_cache": 3,
            "throughput_qps": 42.0,
        }

    def report(self):
        return dict(self._report)


class TestSnapshot:
    def test_rates_from_report_when_no_prev(self):
        broker = StubBroker()
        snap = dashboard.snapshot(broker)
        assert snap["qps"] == 42.0
        assert snap["hit_rate"] == 3 / 8
        assert snap["shed_rate"] == 1 / 10
        assert snap["retry_rate"] == 2 / 10

    def test_instantaneous_qps_from_prev_delta(self):
        broker = StubBroker()
        snap0 = dashboard.snapshot(broker)
        broker._clock.advance(2.0)
        broker._report["completed"] = 18
        snap1 = dashboard.snapshot(broker, prev=snap0)
        # 10 more completions over 2 s
        assert snap1["qps"] == 5.0

    def test_latency_by_source(self):
        broker = StubBroker()
        broker.latency.record("cache", 0.001)
        broker.latency.record("solve", 0.1)
        broker.latency.record("solve", 0.2)
        snap = dashboard.snapshot(broker)
        assert snap["latency_by_source"]["solve"]["n"] == 2
        assert snap["latency_by_source"]["solve"]["p50_s"] == 0.1
        assert "degraded" not in snap["latency_by_source"]

    def test_optional_sections_default_empty(self):
        snap = dashboard.snapshot(StubBroker())
        assert snap["breaker"] == {}
        assert snap["chaos"] == {}
        assert snap["burn"] is None
        assert snap["recent"] == []

    def test_full_sections(self):
        events = WideEventLog()
        ctx = RequestContext(request_id(0), root=5)
        events.emit(
            ctx.wide_event(
                outcome="ok", source="solve", latency_s=0.1, attempts_total=1
            )
        )
        broker = StubBroker(
            events=events, breaker=StubBreaker(), chaos=StubChaos()
        )
        broker.latency.record("solve", 0.1)
        monitor = BurnRateMonitor(
            broker.latency, BurnRateConfig(min_samples=1)
        )
        snap = dashboard.snapshot(broker, monitor=monitor)
        assert snap["breaker"]["solve"] == "open"
        assert snap["chaos"]["error"] == 3
        assert snap["burn"]["burn_fast_total"] == 1
        assert snap["recent"][0]["request_id"] == "req-000000"


class TestRender:
    def test_render_contains_all_sections(self):
        events = WideEventLog()
        ctx = RequestContext(request_id(0), root=5)
        events.emit(
            ctx.wide_event(
                outcome="ok", source="solve", latency_s=0.1, attempts_total=1
            )
        )
        broker = StubBroker(
            events=events, breaker=StubBreaker(), chaos=StubChaos()
        )
        broker.latency.record("solve", 0.1)
        monitor = BurnRateMonitor(
            broker.latency, BurnRateConfig(min_samples=1)
        )
        text = dashboard.render(dashboard.snapshot(broker, monitor=monitor))
        assert "serve-top" in text
        assert "offered" in text and "completed" in text
        assert "solve" in text
        assert "breaker" in text and "open" in text
        assert "chaos" in text and "error=3" in text
        assert "burn rate" in text
        assert "req-000000" in text

    def test_render_empty_broker(self):
        text = dashboard.render(dashboard.snapshot(StubBroker()))
        assert "(no completed requests yet)" in text
        assert "burn rate" not in text

    def test_nan_burn_renders_as_na(self):
        broker = StubBroker()
        monitor = BurnRateMonitor(broker.latency, BurnRateConfig())
        text = dashboard.render(dashboard.snapshot(broker, monitor=monitor))
        assert "n/a" in text

    def test_alert_line_rendered(self):
        broker = StubBroker()
        for _ in range(20):
            broker.latency.record("timeout", 0.01)
        monitor = BurnRateMonitor(
            broker.latency, BurnRateConfig(min_samples=1)
        )
        text = dashboard.render(dashboard.snapshot(broker, monitor=monitor))
        assert "ALERT" in text and "[page]" in text


class TestRun:
    def test_fixed_frames_without_clear(self):
        broker = StubBroker()
        out = io.StringIO()
        drawn = dashboard.run(
            broker, frames=3, refresh_s=0.0, clear=False, out=out
        )
        assert drawn == 3
        assert out.getvalue().count("serve-top") == 3
        assert dashboard.CLEAR not in out.getvalue()

    def test_clear_mode_prefixes_ansi(self):
        out = io.StringIO()
        dashboard.run(StubBroker(), frames=1, refresh_s=0.0, out=out)
        assert out.getvalue().startswith(dashboard.CLEAR)

    def test_should_stop_ends_loop(self):
        out = io.StringIO()
        drawn = dashboard.run(
            StubBroker(),
            frames=None,
            refresh_s=0.0,
            clear=False,
            out=out,
            should_stop=lambda: True,
        )
        # draws the frame it was on, then honours the stop signal
        assert drawn == 1
