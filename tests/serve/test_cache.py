"""Unit tests for the byte-budgeted LRU distance cache."""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve.cache import DistanceCache


def arr(n: int, fill: int = 0) -> np.ndarray:
    return np.full(n, fill, dtype=np.int64)


class TestLru:
    def test_get_hit_and_miss(self):
        cache = DistanceCache(1 << 20)
        assert cache.get(0) is None
        cache.put(0, arr(8))
        got = cache.get(0)
        assert got is not None
        assert np.array_equal(got, arr(8))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_order_and_refresh(self):
        cache = DistanceCache(1 << 20)
        for root in (1, 2, 3):
            cache.put(root, arr(4, root))
        assert cache.roots() == [1, 2, 3]
        cache.get(1)  # refreshes 1 to most-recently-used
        assert cache.roots() == [2, 3, 1]

    def test_eviction_respects_byte_budget(self):
        entry = arr(8)
        budget = 3 * entry.nbytes
        cache = DistanceCache(budget)
        for root in range(5):
            cache.put(root, arr(8, root))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        assert cache.stats.bytes_in_use <= budget
        # LRU victims: the oldest two inserts are gone
        assert cache.roots() == [2, 3, 4]
        assert cache.get(0) is None

    def test_reinsert_same_root_replaces(self):
        cache = DistanceCache(1 << 20)
        cache.put(7, arr(4, 1))
        cache.put(7, arr(4, 2))
        assert len(cache) == 1
        assert cache.stats.bytes_in_use == arr(4).nbytes
        assert cache.get(7)[0] == 2

    def test_oversize_entry_rejected(self):
        small = arr(2)
        cache = DistanceCache(small.nbytes)
        cache.put(0, small)
        assert not cache.put(1, arr(64))
        assert cache.stats.rejected == 1
        # the resident entry survives a rejected put
        assert 0 in cache
        assert 1 not in cache

    def test_zero_budget_disables_storage(self):
        cache = DistanceCache(0)
        assert not cache.put(0, arr(4))
        assert cache.get(0) is None
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_clear(self):
        cache = DistanceCache(1 << 20)
        cache.put(0, arr(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes_in_use == 0


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestCostAwareEviction:
    def test_cheapest_to_recompute_goes_first(self):
        entry = arr(8)
        cache = DistanceCache(3 * entry.nbytes)
        cache.put(1, arr(8), cost_s=5.0)   # expensive solve
        cache.put(2, arr(8), cost_s=0.1)   # cheap solve
        cache.put(3, arr(8), cost_s=3.0)
        cache.put(4, arr(8), cost_s=1.0)   # forces one eviction
        # the cheap entry is evicted even though 1 is least-recently used
        assert 2 not in cache
        assert cache.roots() == [1, 3, 4]

    def test_equal_costs_degrade_to_lru(self):
        entry = arr(8)
        cache = DistanceCache(2 * entry.nbytes)
        cache.put(1, arr(8))
        cache.put(2, arr(8))
        cache.put(3, arr(8))
        assert cache.roots() == [2, 3]  # plain LRU when costs tie

    def test_scan_window_bounds_the_search(self):
        entry = arr(8)
        cache = DistanceCache(3 * entry.nbytes, evict_scan=2)
        cache.put(1, arr(8), cost_s=5.0)
        cache.put(2, arr(8), cost_s=4.0)
        cache.put(3, arr(8), cost_s=0.01)  # cheapest, but outside the window
        cache.put(4, arr(8), cost_s=9.0)
        # only {1, 2} were scanned; 2 is the cheaper of those
        assert cache.roots() == [1, 3, 4]


class TestChecksums:
    def corrupt_in_place(self, cache, root):
        entry = cache._entries[root]
        entry.distances.setflags(write=True)
        entry.distances[0] += 1
        entry.distances.setflags(write=False)

    def test_verified_get_quarantines_corruption(self):
        cache = DistanceCache(1 << 20, checksum=True)
        cache.put(0, arr(8))
        self.corrupt_in_place(cache, 0)
        assert cache.get(0) is not None  # verification off: served as-is
        cache.verify_get = True
        assert cache.get(0) is None  # quarantined, counted as a miss
        assert cache.stats.quarantined == 1
        assert 0 not in cache
        assert cache.stats.bytes_in_use == 0

    def test_clean_entries_survive_verification(self):
        cache = DistanceCache(1 << 20, checksum=True)
        cache.verify_get = True
        original = arr(8, 3)
        cache.put(0, original)
        assert cache.get(0) is original  # still no copy
        assert cache.stats.quarantined == 0

    def test_audit_sweeps_all_entries(self):
        cache = DistanceCache(1 << 20, checksum=True)
        for root in range(3):
            cache.put(root, arr(8, root))
        self.corrupt_in_place(cache, 1)
        assert cache.audit() == [1]
        assert cache.roots() == [0, 2]
        assert cache.stats.quarantined == 1

    def test_audit_without_checksum_is_noop(self):
        cache = DistanceCache(1 << 20)
        cache.put(0, arr(8))
        assert cache.audit() == []

    def test_registry_counts_quarantine(self):
        registry = MetricsRegistry()
        cache = DistanceCache(1 << 20, checksum=True, registry=registry)
        cache.verify_get = True
        cache.put(0, arr(8))
        self.corrupt_in_place(cache, 0)
        cache.get(0)
        assert "serve_cache_quarantined_total 1" in registry.prometheus_text()


class TestNegativeCache:
    def test_ttl_tombstone(self):
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=2.0, clock=clock)
        assert not cache.negative(5)
        cache.note_timeout(5)
        assert cache.negative(5)
        clock.t = 2.5  # past the TTL: tombstone expires lazily
        assert not cache.negative(5)

    def test_bare_probe_is_a_peek(self):
        # Regression: every live probe used to count a negative_hit, so
        # drain loops and repeated checks inflated the shed metric.
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=60.0, clock=clock)
        cache.note_timeout(5)
        for _ in range(10):
            assert cache.negative(5)
        assert cache.stats.negative_hits == 0

    def test_count_advances_stats_per_shed_request(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        cache = DistanceCache(
            1 << 20, negative_ttl_s=60.0, clock=clock, registry=registry
        )
        cache.note_timeout(5)
        assert cache.negative(5, count=3)  # a 3-request group shed
        assert cache.negative(5, count=2)
        assert cache.stats.negative_hits == 5
        assert "serve_cache_negative_hits_total 5" in registry.prometheus_text()
        # count on a dead/absent tombstone touches nothing
        assert not cache.negative(99, count=4)
        assert cache.stats.negative_hits == 5

    def test_note_timeout_sweeps_expired_tombstones(self):
        # Regression: tombstones for roots never probed again used to
        # accumulate forever.
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=2.0, clock=clock)
        for root in range(50):
            cache.note_timeout(root)
        assert cache.negative_size() == 50
        clock.t = 5.0  # everything expired
        cache.note_timeout(1000)
        assert cache.negative_size() == 1
        assert cache.negative(1000)

    def test_put_sweeps_expired_tombstones(self):
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=2.0, clock=clock)
        for root in range(50):
            cache.note_timeout(root)
        clock.t = 5.0
        cache.put(1000, arr(8))
        assert cache.negative_size() == 0

    def test_max_negative_caps_map_size(self):
        clock = FakeClock()
        cache = DistanceCache(
            1 << 20, negative_ttl_s=1000.0, max_negative=16, clock=clock
        )
        for root in range(100):
            clock.t += 0.01  # distinct expiries: later roots expire later
            cache.note_timeout(root)
        assert cache.negative_size() == 16
        # soonest-to-expire (oldest) were evicted; newest survive
        assert not cache.negative(0)
        assert cache.negative(99)

    def test_max_negative_validation(self):
        with pytest.raises(ValueError):
            DistanceCache(1 << 20, max_negative=0)

    def test_disabled_by_default(self):
        cache = DistanceCache(1 << 20)
        cache.note_timeout(5)
        assert not cache.negative(5)

    def test_successful_put_clears_tombstone(self):
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=60.0, clock=clock)
        cache.note_timeout(5)
        cache.put(5, arr(8))
        assert not cache.negative(5)

    def test_clear_drops_tombstones(self):
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=60.0, clock=clock)
        cache.note_timeout(5)
        cache.clear()
        assert not cache.negative(5)


class TestSnapshotKeys:
    """Snapshot-scoped ``(snapshot_id, root)`` keys (DESIGN §15)."""

    def test_tuple_and_int_keys_coexist(self):
        cache = DistanceCache(1 << 20)
        cache.put(7, arr(4, 1))
        cache.put((0, 7), arr(4, 2))
        cache.put((1, 7), arr(4, 3))
        assert np.array_equal(cache.get(7), arr(4, 1))
        assert np.array_equal(cache.get((0, 7)), arr(4, 2))
        assert np.array_equal(cache.get((1, 7)), arr(4, 3))

    def test_key_normalisation_dedupes_numpy_ints(self):
        cache = DistanceCache(1 << 20)
        cache.put((np.int64(0), np.int64(7)), arr(4, 1))
        assert cache.get((0, 7)) is not None
        cache.put((0, 7), arr(4, 2))  # replaces, not a second entry
        assert len(cache.roots()) == 1

    def test_evict_snapshot_scoped_drop(self):
        cache = DistanceCache(1 << 20)
        cache.put(7, arr(4))
        for sid, root in ((0, 7), (0, 17), (1, 17)):
            cache.put((sid, root), arr(4))
        before = cache.stats.evictions
        assert cache.evict_snapshot(0) == 2
        assert cache.stats.evictions == before + 2
        assert cache.get((0, 7)) is None
        assert cache.get((0, 17)) is None
        assert cache.get((1, 17)) is not None
        assert cache.get(7) is not None  # frozen-graph keys untouched
        assert cache.evict_snapshot(0) == 0  # idempotent

    def test_evict_snapshot_drops_scoped_tombstones(self):
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=60.0, clock=clock)
        cache.note_timeout((0, 5))
        cache.note_timeout((1, 5))
        cache.note_timeout(5)
        cache.evict_snapshot(0)
        assert not cache.negative((0, 5))
        assert cache.negative((1, 5))
        assert cache.negative(5)

    def test_bytes_accounting_survives_snapshot_eviction(self):
        registry = MetricsRegistry()
        cache = DistanceCache(1 << 20, registry=registry)
        cache.put((0, 1), arr(64))
        cache.put((1, 1), arr(64))
        cache.evict_snapshot(0)
        assert cache.stats.bytes_in_use == arr(64).nbytes
        assert "serve_cache_entries 1" in registry.prometheus_text()


class TestClearAuditNegativeInterplay:
    """Satellite: ``clear()``/``audit()`` against the negative cache."""

    def test_negative_sweep_restarts_after_clear(self):
        # A full clear drops tombstones; the lazy sweep machinery must
        # keep working on entries noted *after* the clear.
        clock = FakeClock()
        cache = DistanceCache(1 << 20, negative_ttl_s=2.0, clock=clock)
        for root in range(10):
            cache.note_timeout(root)
        cache.clear()
        assert cache.negative_size() == 0
        cache.note_timeout(50)
        assert cache.negative(50)
        clock.t = 5.0
        cache.note_timeout(51)  # sweep fires over post-clear tombstones
        assert cache.negative_size() == 1
        assert not cache.negative(50)

    def test_negative_cap_restarts_after_clear(self):
        clock = FakeClock()
        cache = DistanceCache(
            1 << 20, negative_ttl_s=1000.0, max_negative=4, clock=clock
        )
        for root in range(10):
            clock.t += 0.01
            cache.note_timeout(root)
        cache.clear()
        for root in range(10, 16):
            clock.t += 0.01
            cache.note_timeout(root)
        # cap applies to the post-clear population alone
        assert cache.negative_size() == 4
        assert not cache.negative(10)  # oldest post-clear evicted
        assert cache.negative(15)

    def test_audit_ignores_negative_entries(self):
        clock = FakeClock()
        cache = DistanceCache(
            1 << 20, checksum=True, negative_ttl_s=60.0, clock=clock
        )
        cache.put(1, arr(8))
        cache.note_timeout(2)
        assert cache.audit() == []
        assert cache.negative(2)  # tombstones survive a clean audit

    def test_audit_after_clear_is_empty(self):
        cache = DistanceCache(1 << 20, checksum=True)
        cache.put(1, arr(8))
        cache.clear()
        assert cache.audit() == []
        assert cache.stats.quarantined == 0

    def test_audit_quarantine_leaves_tombstones(self):
        clock = FakeClock()
        cache = DistanceCache(
            1 << 20, checksum=True, negative_ttl_s=60.0, clock=clock
        )
        data = arr(8)
        cache.put(1, data)
        cache.note_timeout(2)
        stored = cache.peek(1)
        stored.flags.writeable = True
        stored[0] = 99  # corrupt in place behind the CRC
        assert cache.audit() == [1]
        assert cache.negative(2)
        assert cache.get(1) is None


class TestContract:
    def test_stored_array_is_read_only_and_uncopied(self):
        cache = DistanceCache(1 << 20)
        original = arr(8, 5)
        cache.put(0, original)
        got = cache.get(0)
        assert got is original  # no copy: a hit is the solve's own output
        with pytest.raises(ValueError):
            got[0] = 99

    def test_peek_touches_nothing(self):
        cache = DistanceCache(1 << 20)
        cache.put(1, arr(4))
        cache.put(2, arr(4))
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.peek(1) is not None
        assert cache.peek(99) is None
        assert (cache.stats.hits, cache.stats.misses) == before
        assert cache.roots() == [1, 2]  # LRU order unchanged

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            DistanceCache(-1)

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        cache = DistanceCache(arr(4).nbytes, registry=registry)
        cache.put(0, arr(4))
        cache.get(0)
        cache.get(1)
        cache.put(1, arr(4))  # evicts 0
        text = registry.prometheus_text()
        assert "serve_cache_hits_total 1" in text
        assert "serve_cache_misses_total 1" in text
        assert "serve_cache_evictions_total 1" in text
        assert "serve_cache_entries 1" in text
