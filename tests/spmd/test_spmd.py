"""SPMD engine: equivalence witness against the orchestrated engine.

The central claims: (1) the rank-local message-passing execution produces
bit-identical distances, and (2) its *accounting* — relaxations, phases,
buckets, bytes, allreduces, and the cost model's simulated time — matches
the orchestrated engine exactly. Together these mechanically justify the
orchestrated engine's declared-traffic approach (DESIGN.md §5).
"""

import numpy as np
import pytest

from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.context import make_context
from repro.core.delta_stepping import DeltaSteppingEngine
from repro.core.reference import dijkstra_reference
from repro.runtime.costmodel import evaluate_cost
from repro.runtime.machine import MachineConfig
from repro.spmd import (
    Mailbox,
    build_rank_states,
    spmd_bellman_ford,
    spmd_delta_stepping,
)


def orchestrated(graph, root, machine, **cfg_kwargs):
    ctx = make_context(graph, machine, SolverConfig(**cfg_kwargs))
    d = DeltaSteppingEngine(ctx).run(root)
    return d, ctx


class TestMailbox:
    def make(self, p=3, n=12):
        from repro.graph.partition import BlockPartition
        from repro.runtime.comm import Communicator
        from repro.runtime.metrics import Metrics

        machine = MachineConfig(num_ranks=p, threads_per_rank=1)
        metrics = Metrics(num_ranks=p, threads_per_rank=1)
        comm = Communicator(machine, BlockPartition(n, p), metrics)
        return Mailbox(p, comm), metrics

    def test_records_routed_to_destination(self):
        mailbox, _ = self.make()
        mailbox.post(0, np.array([1, 2, 1]), np.array([5, 9, 6]),
                     np.array([50, 90, 60]))
        inboxes = mailbox.deliver(16)
        assert inboxes[0][0].size == 0
        assert sorted(inboxes[1][0].tolist()) == [5, 6]
        assert inboxes[2][0].tolist() == [9]
        # payload follows
        assert sorted(inboxes[1][1].tolist()) == [50, 60]

    def test_traffic_accounted(self):
        mailbox, metrics = self.make()
        mailbox.post(0, np.array([1]), np.array([5]), np.array([50]))
        mailbox.deliver(16)
        assert metrics.total_bytes == 16

    def test_same_rank_records_free(self):
        mailbox, metrics = self.make()
        mailbox.post(1, np.array([1]), np.array([5]), np.array([50]))
        inboxes = mailbox.deliver(16)
        assert inboxes[1][0].tolist() == [5]
        assert metrics.total_bytes == 0

    def test_allreduce_counted(self):
        mailbox, metrics = self.make()
        assert mailbox.allreduce_sum([1, 2, 3]) == 6
        assert mailbox.allreduce_min([4, 2, 9]) == 2
        assert metrics.total_allreduces == 2

    def test_misuse_rejected(self):
        mailbox, _ = self.make()
        with pytest.raises(IndexError):
            mailbox.post(9, np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            mailbox.post(0, np.array([0, 1]), np.array([1]))
        with pytest.raises(ValueError):
            mailbox.allreduce_sum([1])


class TestBuildRankStates:
    def test_slices_cover_graph(self, rmat1_small):
        from repro.graph.partition import BlockPartition

        g = rmat1_small.sorted_by_weight()
        part = BlockPartition(g.num_vertices, 4)
        states = build_rank_states(g, part, 25, root=3)
        assert sum(st.num_local for st in states) == g.num_vertices
        total_arcs = sum(int(st.indptr[-1]) for st in states)
        assert total_arcs == g.num_arcs

    def test_root_initialised_on_owner_only(self, rmat1_small):
        from repro.graph.partition import BlockPartition

        g = rmat1_small.sorted_by_weight()
        part = BlockPartition(g.num_vertices, 4)
        root = 200
        states = build_rank_states(g, part, 25, root=root)
        owner = part.owner(root)
        for st in states:
            if st.rank == owner:
                assert st.d[root - st.lo] == 0
                assert st.active.size == 1
            else:
                assert st.active.size == 0
                assert np.all(st.d == st.d.max())


class TestBellmanFordEquivalence:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_distances_and_accounting_match(self, rmat1_small, ranks):
        machine = MachineConfig(num_ranks=ranks, threads_per_rank=3)
        d_spmd, ctx_spmd = spmd_bellman_ford(rmat1_small, 3, machine)
        d_orch, ctx_orch = orchestrated(rmat1_small, 3, machine,
                                        delta=DELTA_INFINITY)
        assert np.array_equal(d_spmd, d_orch)
        assert np.array_equal(d_spmd, dijkstra_reference(rmat1_small, 3))
        assert ctx_spmd.metrics.summary() == ctx_orch.metrics.summary()
        a = evaluate_cost(ctx_spmd.metrics, machine)
        b = evaluate_cost(ctx_orch.metrics, machine)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.bucket_time == pytest.approx(b.bucket_time)


class TestDeltaSteppingEquivalence:
    @pytest.mark.parametrize("ranks", [1, 3, 4])
    @pytest.mark.parametrize("ios", [False, True])
    @pytest.mark.parametrize("delta", [7, 25, 100])
    def test_distances_and_accounting_match(self, rmat1_small, ranks, ios, delta):
        machine = MachineConfig(num_ranks=ranks, threads_per_rank=2)
        d_spmd, ctx_spmd = spmd_delta_stepping(
            rmat1_small, 3, machine, delta=delta, use_ios=ios
        )
        d_orch, ctx_orch = orchestrated(
            rmat1_small, 3, machine, delta=delta, use_ios=ios
        )
        assert np.array_equal(d_spmd, d_orch)
        assert ctx_spmd.metrics.summary() == ctx_orch.metrics.summary()
        a = evaluate_cost(ctx_spmd.metrics, machine)
        b = evaluate_cost(ctx_orch.metrics, machine)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.bucket_time == pytest.approx(b.bucket_time)
        assert a.comm_time == pytest.approx(b.comm_time)

    def test_per_bucket_stats_match(self, rmat2_small):
        machine = MachineConfig(num_ranks=3, threads_per_rank=2)
        _, ctx_spmd = spmd_delta_stepping(rmat2_small, 7, machine, delta=25)
        _, ctx_orch = orchestrated(rmat2_small, 7, machine, delta=25)
        spmd_buckets = [
            (s["bucket"], s["members"], s["relaxations"])
            for s in ctx_spmd.metrics.per_bucket_stats
        ]
        orch_buckets = [
            (s["bucket"], s["members"], s["relaxations"])
            for s in ctx_orch.metrics.per_bucket_stats
        ]
        assert spmd_buckets == orch_buckets

    def test_phase_series_match(self, rmat2_small):
        machine = MachineConfig(num_ranks=4, threads_per_rank=2)
        _, ctx_spmd = spmd_delta_stepping(
            rmat2_small, 7, machine, delta=25, use_ios=True
        )
        _, ctx_orch = orchestrated(
            rmat2_small, 7, machine, delta=25, use_ios=True
        )
        assert (
            ctx_spmd.metrics.per_phase_relaxations
            == ctx_orch.metrics.per_phase_relaxations
        )


class TestFullOptEquivalence:
    """The headline check: the complete OPT composition — IOS, pruning with
    the expectation decision heuristic (pull phases do real request/response
    mailbox rounds), hybridization — matches the orchestrated engine in
    distances and in every accounting dimension."""

    @pytest.mark.parametrize("ranks", [1, 3, 4])
    def test_opt_25(self, rmat1_small, ranks):
        machine = MachineConfig(num_ranks=ranks, threads_per_rank=2)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True)
        d_spmd, ctx_spmd = spmd_delta_stepping(
            rmat1_small, 3, machine, config=cfg
        )
        d_orch, ctx_orch = orchestrated(
            rmat1_small, 3, machine, delta=25, use_ios=True,
            use_pruning=True, use_hybrid=True,
        )
        assert np.array_equal(d_spmd, d_orch)
        assert np.array_equal(d_spmd, dijkstra_reference(rmat1_small, 3))
        assert ctx_spmd.metrics.summary() == ctx_orch.metrics.summary()
        a = evaluate_cost(ctx_spmd.metrics, machine)
        b = evaluate_cost(ctx_orch.metrics, machine)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.comm_time == pytest.approx(b.comm_time)
        assert a.bucket_time == pytest.approx(b.bucket_time)

    def test_forced_pull(self, rmat2_small):
        machine = MachineConfig(num_ranks=3, threads_per_rank=2)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           pushpull_mode="pull")
        d_spmd, ctx_spmd = spmd_delta_stepping(
            rmat2_small, 7, machine, config=cfg
        )
        d_orch, ctx_orch = orchestrated(
            rmat2_small, 7, machine, delta=25, use_ios=True,
            use_pruning=True, pushpull_mode="pull",
        )
        assert np.array_equal(d_spmd, d_orch)
        assert ctx_spmd.metrics.summary() == ctx_orch.metrics.summary()
        assert ctx_spmd.metrics.pull_buckets == ctx_spmd.metrics.buckets_processed

    def test_decision_sequences_agree(self, rmat1_small):
        machine = MachineConfig(num_ranks=4, threads_per_rank=2)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True)
        _, ctx_spmd = spmd_delta_stepping(rmat1_small, 3, machine, config=cfg)
        _, ctx_orch = orchestrated(
            rmat1_small, 3, machine, delta=25, use_ios=True,
            use_pruning=True, use_hybrid=True,
        )
        spmd_modes = [s["mode"] for s in ctx_spmd.metrics.per_bucket_stats]
        orch_modes = [s["mode"] for s in ctx_orch.metrics.per_bucket_stats]
        assert spmd_modes == orch_modes

    def test_exact_estimator_rejected(self, rmat1_small):
        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        cfg = SolverConfig(delta=25, use_pruning=True,
                           pushpull_estimator="exact")
        with pytest.raises(ValueError, match="expectation"):
            spmd_delta_stepping(rmat1_small, 3, machine, config=cfg)

    def test_census_rejected(self, rmat1_small):
        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        cfg = SolverConfig(delta=25, collect_census=True)
        with pytest.raises(ValueError, match="census"):
            spmd_delta_stepping(rmat1_small, 3, machine, config=cfg)
