"""Per-thread work attribution.

The simulated step time is driven by the busiest hardware thread, so
algorithms must say *which thread* performs each unit of work. Vertices are
block-distributed over the threads of their owning rank (Section III-E), so
a vertex maps to a global thread index; heavy vertices can instead have
their work spread across all threads of the rank (intra-node load
balancing).
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import BlockPartition
from repro.runtime.machine import MachineConfig

__all__ = ["thread_index", "thread_work", "thread_work_balanced"]


def thread_index(
    vertices: np.ndarray,
    partition: BlockPartition,
    machine: MachineConfig,
    *,
    thread_map: np.ndarray | None = None,
) -> np.ndarray:
    """Global hardware-thread index owning each vertex.

    Thread ``t`` of rank ``r`` has global index ``r * T + t``. Within a
    rank, vertices are block-distributed over the rank's threads.
    ``thread_map`` is an optional precomputed per-vertex thread table
    (``thread_index(np.arange(n), ...)``): charging is on the per-record
    hot path, and a one-time O(n) table turns each charge into a single
    gather.
    """
    v = np.asarray(vertices, dtype=np.int64)
    if thread_map is not None:
        return thread_map[v]
    t_per_rank = machine.threads_per_rank
    b = partition.boundaries
    ranks = np.clip(np.searchsorted(b, v, side="right") - 1, 0, partition.num_ranks - 1)
    lo = b[ranks]
    size = b[ranks + 1] - lo
    local = v - lo
    # Block distribution of `size` vertices over T threads: the first
    # size % T threads get ceil(size/T), the rest floor(size/T).
    base = size // t_per_rank
    extra = size % t_per_rank
    big = extra * (base + 1)
    in_big = local < big
    thread = np.where(
        in_big,
        local // np.maximum(base + 1, 1),
        np.where(base > 0, extra + (local - big) // np.maximum(base, 1), 0),
    )
    return ranks * t_per_rank + thread


def thread_work(
    vertices: np.ndarray,
    units: np.ndarray | None,
    partition: BlockPartition,
    machine: MachineConfig,
    *,
    thread_map: np.ndarray | None = None,
) -> np.ndarray:
    """Work-unit histogram over all hardware threads.

    ``units[i]`` work units are charged to the thread owning ``vertices[i]``
    (1 unit each when ``units`` is None). Returns a flat ``float64`` array of
    length ``num_ranks * threads_per_rank``.
    """
    total = machine.num_ranks * machine.threads_per_rank
    v = np.asarray(vertices, dtype=np.int64)
    if v.size == 0:
        return np.zeros(total, dtype=np.float64)
    idx = thread_index(v, partition, machine, thread_map=thread_map)
    if units is None:
        return np.bincount(idx, minlength=total).astype(np.float64)
    u = np.asarray(units, dtype=np.float64)
    return np.bincount(idx, weights=u, minlength=total)


def thread_work_balanced(
    vertices: np.ndarray,
    units: np.ndarray | None,
    partition: BlockPartition,
    machine: MachineConfig,
    heavy_threshold: float,
    *,
    thread_map: np.ndarray | None = None,
) -> np.ndarray:
    """Work histogram with intra-node balancing of heavy vertices.

    Work of a vertex whose unit count exceeds ``heavy_threshold`` is spread
    evenly over all threads of its owning rank (the paper's intra-node
    strategy: the owner thread does not relax a heavy vertex's edges alone;
    the edges are partitioned among the node's threads). Light vertices are
    charged to their owner thread as usual.
    """
    total = machine.num_ranks * machine.threads_per_rank
    t_per_rank = machine.threads_per_rank
    v = np.asarray(vertices, dtype=np.int64)
    if v.size == 0:
        return np.zeros(total, dtype=np.float64)
    u = (
        np.ones(v.size, dtype=np.float64)
        if units is None
        else np.asarray(units, dtype=np.float64)
    )
    heavy = u > heavy_threshold
    out = thread_work(
        v[~heavy], u[~heavy], partition, machine, thread_map=thread_map
    )
    if heavy.any():
        ranks = np.asarray(partition.owner(v[heavy]), dtype=np.int64)
        per_rank = np.bincount(ranks, weights=u[heavy], minlength=machine.num_ranks)
        out += np.repeat(per_rank / t_per_rank, t_per_rank)
    return out
