"""Unit tests for the degree-balanced partition strategy."""

import numpy as np
import pytest

from repro.graph.partition import BlockPartition, DegreeBalancedPartition
from repro.graph.rmat import RMAT1, rmat_graph


class TestDegreeBalancedPartition:
    def test_boundaries_tile_vertex_space(self):
        deg = np.array([1, 1, 1, 100, 1, 1, 1, 1])
        p = DegreeBalancedPartition(deg, 4)
        b = p.boundaries
        assert b[0] == 0 and b[-1] == 8
        assert np.all(np.diff(b) >= 0)

    def test_hub_isolated_in_own_block(self):
        deg = np.array([1, 1, 1, 100, 1, 1, 1, 1])
        p = DegreeBalancedPartition(deg, 4)
        hub_rank = p.owner(3)
        lo, hi = p.rank_range(hub_rank)
        # the hub dominates its rank's degree mass
        assert deg[lo:hi].sum() >= 100

    def test_degree_totals_sum(self):
        rng = np.random.default_rng(0)
        deg = rng.integers(0, 50, 100)
        p = DegreeBalancedPartition(deg, 7)
        assert p.degree_totals.sum() == deg.sum()

    def test_balances_better_than_block_on_sorted_degrees(self):
        # Hub-at-front degree profile (unscrambled R-MAT shape).
        deg = np.sort(
            np.random.default_rng(1).pareto(1.5, 256).astype(np.int64) + 1
        )[::-1].copy()
        block = BlockPartition(256, 8)
        bal = DegreeBalancedPartition(deg, 8)

        def max_load(p):
            return max(
                deg[p.rank_range(r)[0] : p.rank_range(r)[1]].sum()
                for r in range(8)
            )

        assert max_load(bal) <= max_load(block)

    def test_owner_consistent_with_boundaries(self):
        deg = np.random.default_rng(2).integers(0, 30, 200)
        p = DegreeBalancedPartition(deg, 9)
        b = p.boundaries
        v = np.arange(200)
        owners = np.asarray(p.owner(v))
        assert np.all(v >= b[owners])
        assert np.all(v < b[owners + 1])

    def test_zero_degree_graph(self):
        p = DegreeBalancedPartition(np.zeros(10, dtype=np.int64), 3)
        assert p.boundaries[-1] == 10
        total = sum(p.rank_size(r) for r in range(3))
        assert total == 10

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DegreeBalancedPartition(np.zeros(5, dtype=np.int64), 0)
        with pytest.raises(ValueError):
            DegreeBalancedPartition(np.zeros((2, 2), dtype=np.int64), 2)

    def test_solver_end_to_end_with_degree_partition(self):
        from repro.core.config import SolverConfig
        from repro.core.solver import solve_sssp

        g = rmat_graph(scale=9, seed=4, params=RMAT1)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           partition="degree")
        res = solve_sssp(g, 7, algorithm="deg", config=cfg,
                         num_ranks=4, threads_per_rank=2, validate=True)
        assert res.gteps > 0
