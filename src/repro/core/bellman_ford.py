"""Distributed Bellman-Ford (Section II-A).

Used in two places: standalone as the Δ = ∞ baseline, and as the tail stage
of the hybridization strategy (Section III-D), which collapses all buckets
past the switch point into one and finishes with Bellman-Ford iterations.

Each iteration relaxes *all* incident arcs of every active vertex (a vertex
is active when its tentative distance changed in the previous iteration);
iterations are bulk-synchronous with one termination allreduce each.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.distances import init_distances
from repro.core.relax import apply_relaxations
from repro.runtime.comm import RELAX_RECORD_BYTES
from repro.runtime.metrics import ComputeKind
from repro.util.ranges import concat_ranges

__all__ = ["run_bellman_ford", "bellman_ford_stage"]


def bellman_ford_stage(
    ctx: ExecutionContext,
    d: np.ndarray,
    initial_active: np.ndarray,
    *,
    phase_kind: str = "bf",
    epoch_hook=None,
) -> int:
    """Run Bellman-Ford iterations from an arbitrary starting state.

    Parameters
    ----------
    ctx:
        Execution context (graph, accounting).
    d:
        Tentative distances, updated in place.
    initial_active:
        Vertices considered active in the first iteration.
    phase_kind:
        ``"bf"`` for the algorithm's own stage, ``"recovery"`` when the
        stage is a watchdog degradation pass (its cost then lands in the
        recovery accounting instead of the paper-facing phases).
    epoch_hook:
        Optional ``hook(active)`` called at the top of every iteration,
        when the distance array is a consistent epoch boundary — the
        defense layer checkpoints and the watchdog tick live here.

    Returns
    -------
    Number of iterations (phases) executed.
    """
    graph = ctx.graph
    indptr, adj, weights = graph.indptr, graph.adj, graph.weights
    sync_kind = phase_kind if phase_kind == "recovery" else "bucket"
    active = np.asarray(initial_active, dtype=np.int64)
    iterations = 0
    tr = ctx.tracer
    while True:
        # Global check whether any rank still has active vertices.
        ctx.comm.allreduce(1, phase_kind=sync_kind)
        if active.size == 0:
            break
        if epoch_hook is not None:
            epoch_hook(active)
        iterations += 1
        span = (
            tr.begin(
                "bf", cat="phase", iteration=iterations, kind=phase_kind,
                active=int(active.size),
            )
            if tr is not None
            else None
        )
        # Building the active list is a scan over last phase's changed set.
        per_rank = np.bincount(
            np.asarray(ctx.partition.owner(active), dtype=np.int64),
            minlength=ctx.machine.num_ranks,
        )
        ctx.charge_scan(per_rank)
        # Relax every incident arc of every active vertex.
        arcs, owner_idx = concat_ranges(indptr[active], indptr[active + 1])
        src = active[owner_idx]
        dst = adj[arcs]
        nd = d[src] + weights[arcs]
        ctx.charge(
            ComputeKind.BF_RELAX,
            active,
            (indptr[active + 1] - indptr[active]).astype(np.float64),
            phase_kind=phase_kind,
        )
        ctx.comm.exchange_by_vertex(src, dst, RELAX_RECORD_BYTES,
                                    phase_kind=phase_kind)
        ctx.charge(
            ComputeKind.BF_RELAX, dst, None, phase_kind=phase_kind,
            count_as_relax=True,
        )
        ctx.metrics.note_phase(phase_kind, dst.size)
        active = apply_relaxations(d, dst, nd)
        if ctx.guards is not None:
            ctx.guards.after_relaxations(d)
        if tr is not None:
            tr.end(span, relaxed=int(dst.size))
    return iterations


def run_bellman_ford(ctx: ExecutionContext, root: int) -> np.ndarray:
    """Full Bellman-Ford SSSP from ``root``. Returns the distance array."""
    d = init_distances(ctx.graph.num_vertices, root)
    bellman_ford_stage(ctx, d, np.array([root], dtype=np.int64))
    return d
