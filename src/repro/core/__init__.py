"""The paper's contribution: the Δ-stepping SSSP family with pruning,
hybridization and load balancing, executed on the simulated runtime.

Key entry points:

- :func:`repro.core.solver.solve_sssp` — run any algorithm variant;
- :func:`repro.core.config.preset` — the paper's named configurations
  (``Del-Δ``, ``Prune-Δ``, ``OPT-Δ``, ``LB-OPT-Δ``, …);
- :func:`repro.core.reference.dijkstra_reference` — sequential ground truth.
"""

from repro.core.bellman_ford import bellman_ford_stage, run_bellman_ford
from repro.core.buckets import bucket_index, bucket_members, next_bucket
from repro.core.config import DELTA_INFINITY, PRESETS, SolverConfig, preset
from repro.core.context import ExecutionContext, make_context
from repro.core.delta_stepping import DeltaSteppingEngine, run_delta_stepping
from repro.core.distances import INF, init_distances
from repro.core.histograms import WeightHistogram, build_weight_histogram
from repro.core.hybrid import DEFAULT_TAU, should_switch
from repro.core.load_balance import SplitResult, split_heavy_vertices
from repro.core.paths import (
    NO_PARENT,
    build_parent_tree,
    extract_path,
    predecessor_arcs,
    tree_depths,
)
from repro.core.pruning import bucket_census, long_phase_pull, long_phase_push
from repro.core.pushpull import (
    PushPullEstimate,
    decide_mode,
    estimate_models,
    estimate_models_exact,
    estimate_models_histogram,
)
from repro.core.validation import ValidationReport, validate_sssp_structure
from repro.core.reference import (
    DistanceMismatch,
    dijkstra_reference,
    scipy_reference,
    validate_distances,
)
from repro.core.relax import apply_relaxations
from repro.core.solver import BatchSolver, SsspResult, solve_sssp

__all__ = [
    "BatchSolver",
    "DEFAULT_TAU",
    "DELTA_INFINITY",
    "DeltaSteppingEngine",
    "DistanceMismatch",
    "ExecutionContext",
    "INF",
    "NO_PARENT",
    "ValidationReport",
    "WeightHistogram",
    "build_parent_tree",
    "build_weight_histogram",
    "extract_path",
    "predecessor_arcs",
    "tree_depths",
    "validate_sssp_structure",
    "PRESETS",
    "PushPullEstimate",
    "SolverConfig",
    "SplitResult",
    "SsspResult",
    "apply_relaxations",
    "bellman_ford_stage",
    "bucket_census",
    "bucket_index",
    "bucket_members",
    "decide_mode",
    "dijkstra_reference",
    "estimate_models",
    "estimate_models_exact",
    "estimate_models_histogram",
    "init_distances",
    "long_phase_pull",
    "long_phase_push",
    "make_context",
    "next_bucket",
    "preset",
    "run_bellman_ford",
    "run_delta_stepping",
    "scipy_reference",
    "should_switch",
    "solve_sssp",
    "split_heavy_vertices",
    "validate_distances",
]
