"""Execution context shared by all distributed kernels.

Bundles the immutable per-run state — the (weight-sorted) graph, the vertex
partition, the machine model, the metrics sink and the accounting
communicator — plus the derived per-vertex edge-classification tables the
paper computes in its preprocessing stage (short-edge offsets and long-edge
degrees used by the push/pull volume estimator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolverConfig
from repro.core.histograms import WeightHistogram, build_weight_histogram
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    BlockPartition,
    ContiguousPartition,
    DegreeBalancedPartition,
)
from repro.runtime.comm import Communicator
from repro.runtime.guards import InvariantGuards
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics
from repro.runtime.work import thread_index, thread_work, thread_work_balanced

__all__ = ["ExecutionContext", "make_context"]


@dataclass
class ExecutionContext:
    """Everything a distributed SSSP kernel needs for one run."""

    graph: CSRGraph
    partition: ContiguousPartition
    machine: MachineConfig
    metrics: Metrics
    comm: Communicator
    config: SolverConfig
    short_offsets: np.ndarray
    """Per-vertex count of short out-edges (weight < Δ); weight-sorted prefix."""
    long_degrees: np.ndarray
    """Per-vertex count of long out-edges (weight >= Δ) — the push-volume table."""
    reverse_graph: CSRGraph | None = None
    """Weight-sorted reverse graph for directed inputs (None = undirected:
    the forward adjacency doubles as the in-edge list)."""
    reverse_short_offsets: np.ndarray | None = None
    reverse_long_degrees: np.ndarray | None = None
    heavy_threshold: float = field(default=float("inf"))
    """Intra-node heaviness threshold π in work units (inf = LB disabled)."""
    weight_histogram: WeightHistogram | None = None
    """Per-vertex weight histograms (built only for the histogram estimator)."""
    guards: InvariantGuards | None = None
    """Runtime invariant monitors, present only under ``config.paranoid``.
    Every engine hook site is gated on ``ctx.guards is not None``, so the
    disabled path costs nothing and perturbs no accounting."""
    thread_map: np.ndarray | None = None
    """Precomputed per-vertex hardware-thread table
    (``thread_index(np.arange(n), partition, machine)``): turns every
    per-record work charge into a single gather."""
    tracer: object | None = None
    """Span tracer (:class:`repro.obs.tracer.Tracer`), present only when
    ``config.trace`` asks for telemetry. Every engine hook site is gated on
    ``ctx.tracer is not None`` — the same pay-for-use discipline as
    :attr:`guards`."""

    # ------------------------------------------------------------------
    # In-edge views (pull model): identical to the forward views on
    # undirected graphs, the reverse graph's on directed ones.
    # ------------------------------------------------------------------
    @property
    def in_graph(self) -> CSRGraph:
        """Graph whose adjacency lists are the *incoming* arcs per vertex."""
        return self.reverse_graph if self.reverse_graph is not None else self.graph

    @property
    def in_short_offsets(self) -> np.ndarray:
        return (
            self.reverse_short_offsets
            if self.reverse_short_offsets is not None
            else self.short_offsets
        )

    @property
    def in_long_degrees(self) -> np.ndarray:
        return (
            self.reverse_long_degrees
            if self.reverse_long_degrees is not None
            else self.long_degrees
        )

    # ------------------------------------------------------------------
    # Work-accounting helpers
    # ------------------------------------------------------------------
    def charge(
        self,
        kind: ComputeKind,
        vertices: np.ndarray,
        units: np.ndarray | None,
        *,
        phase_kind: str,
        count_as_relax: bool = False,
    ) -> None:
        """Charge per-vertex work units to the owning threads.

        Honors intra-node load balancing: with ``config.intra_lb``, work of a
        vertex exceeding the heaviness threshold is spread across its rank's
        threads. ``count_as_relax`` feeds the units into the paper's
        relaxation counters (used on the record-application side so each
        relaxation is counted exactly once).
        """
        if self.config.intra_lb:
            tw = thread_work_balanced(
                vertices,
                units,
                self.partition,
                self.machine,
                self.heavy_threshold,
                thread_map=self.thread_map,
            )
        else:
            tw = thread_work(
                vertices, units, self.partition, self.machine,
                thread_map=self.thread_map,
            )
        self.metrics.add_compute(
            kind, tw, phase_kind=phase_kind, count_as_relax=count_as_relax
        )

    def charge_scan(self, num_local_vertices_scanned: np.ndarray) -> None:
        """Charge an even bucket-scan over ranks (``int[P]`` vertices each).

        Bucket identification scans are inherently balanced (every thread
        scans an equal slice of its rank's vertex block), so the work is
        spread uniformly within each rank.
        """
        per_rank = np.asarray(num_local_vertices_scanned, dtype=np.float64)
        if per_rank.size != self.machine.num_ranks:
            raise ValueError("need one scan count per rank")
        tw = np.repeat(per_rank / self.machine.threads_per_rank,
                       self.machine.threads_per_rank)
        self.metrics.add_compute(ComputeKind.BUCKET_SCAN, tw, phase_kind="bucket")

    def scan_all_ranks(self, num_vertices_scanned_total: int | None = None) -> None:
        """Charge a full scan of every rank's vertex block (epoch boundary)."""
        p = self.machine.num_ranks
        n = (
            self.graph.num_vertices
            if num_vertices_scanned_total is None
            else num_vertices_scanned_total
        )
        per_rank = np.full(p, n / p)
        self.charge_scan(per_rank)


def make_context(
    graph: CSRGraph,
    machine: MachineConfig,
    config: SolverConfig,
    *,
    tracer=None,
) -> ExecutionContext:
    """Prepare an :class:`ExecutionContext` (the preprocessing stage).

    Sorts adjacency lists by weight, computes the short/long split tables for
    the configured Δ, resolves the load-balancing thresholds, and wires up
    metrics + communicator.

    ``tracer`` attaches an existing :class:`~repro.obs.tracer.Tracer`
    instead of building one from ``config.trace`` — multi-root front-ends
    (:meth:`~repro.core.solver.BatchSolver.solve_many`, the serving layer)
    use it to share one trace across several contexts; the caller then owns
    finalization.
    """
    sorted_graph = graph.sorted_by_weight()
    if config.partition == "degree":
        partition: ContiguousPartition = DegreeBalancedPartition(
            sorted_graph.degrees, machine.num_ranks
        )
    else:
        partition = BlockPartition(sorted_graph.num_vertices, machine.num_ranks)
    metrics = Metrics(
        num_ranks=machine.num_ranks, threads_per_rank=machine.threads_per_rank
    )
    comm = Communicator(machine, partition, metrics)
    # Edge classification follows the stepping strategy: Δ for the
    # paper's buckets, effectively infinite for the windowed strategies
    # (radius/ρ), whose short phases relax every edge.
    delta = min(config.classification_width, 2**60)
    short_offsets = sorted_graph.short_edge_offsets(delta)
    long_degrees = sorted_graph.degrees - short_offsets
    mean_degree = (
        float(sorted_graph.degrees.mean()) if sorted_graph.num_vertices else 0.0
    )
    heavy = (
        float(config.derived_heavy_degree(mean_degree))
        if config.intra_lb
        else float("inf")
    )
    reverse_graph = None
    rev_short = None
    rev_long = None
    if not sorted_graph.undirected:
        # Directed input: the pull model scans *incoming* arcs, which on an
        # undirected (symmetrized) graph coincide with the forward lists but
        # here need the explicit reverse graph.
        reverse_graph = sorted_graph.reverse().sorted_by_weight()
        rev_short = reverse_graph.short_edge_offsets(delta)
        rev_long = reverse_graph.degrees - rev_short
    histogram = None
    if config.use_pruning and config.pushpull_estimator == "histogram":
        hist_source = reverse_graph if reverse_graph is not None else sorted_graph
        histogram = build_weight_histogram(hist_source, config.histogram_bins)
    guards = (
        InvariantGuards(sorted_graph.num_vertices, delta)
        if config.paranoid
        else None
    )
    thread_map = thread_index(
        np.arange(sorted_graph.num_vertices, dtype=np.int64), partition, machine
    )
    if tracer is not None:
        metrics.tracer = tracer
    else:
        trace_cfg = getattr(config, "trace", None)
        if trace_cfg is not None and trace_cfg.enabled:
            from repro.obs.tracer import Tracer

            tracer = Tracer(machine, trace_cfg)
            metrics.tracer = tracer
    return ExecutionContext(
        graph=sorted_graph,
        partition=partition,
        machine=machine,
        metrics=metrics,
        comm=comm,
        config=config,
        short_offsets=short_offsets,
        long_degrees=long_degrees,
        heavy_threshold=heavy,
        weight_histogram=histogram,
        reverse_graph=reverse_graph,
        reverse_short_offsets=rev_short,
        reverse_long_degrees=rev_long,
        guards=guards,
        thread_map=thread_map,
        tracer=tracer,
    )
