"""Incremental SSSP repair: fix distances instead of re-solving.

Given exact distances ``d_old`` for the *parent* snapshot and the
arc-level :class:`~repro.dynamic.updates.EdgeDelta` to the new one,
:func:`repair_sssp` produces distances for the new snapshot that are
**bit-identical** to a fresh solve — shortest distances over ``int64``
weights are unique, so exactness *is* bit-identity — while touching only
the region the update actually disturbed. The machinery is the
delta-propagation family of Ramalingam–Reps / Frigioni et al., driven
through the repo's own stepping seam: the changed-vertex frontier feeds
:class:`~repro.core.bucket_index.BucketIndex` (for Δ-stepping) or the
windowed strategies of :mod:`repro.core.stepping`, and the drain loop
reuses :func:`~repro.core.relax.apply_relaxations` — precisely the
"PR 3 bucket machinery already consumes changed-vertex sets" property
the ROADMAP called out.

Three phases:

1. **Damage closure** (deletes / weight increases). A vertex ``v`` is
   *dirty* when every certificate of its old distance died: no in-arc
   ``(u, v, w)`` in the *new* graph with ``u`` clean, ``w > 0`` and
   ``d_old[u] + w == d_old[v]``. The worklist starts from the heads of
   worsened arcs that were tight and closes over shortest-path children
   (``d_old[x] == d_old[v] + w(v, x)``) of every vertex it dirties —
   the bounded re-anchoring of orphaned subtrees. Requiring strictly
   positive certificate weights is deliberately conservative: a
   zero-weight cycle of orphans could otherwise certify itself. Extra
   dirtying is always safe (those vertices are re-anchored below); a
   missed dirty vertex never happens because a vertex is skipped only
   while it holds a live certificate chain that lexicographically
   descends (distance, old-tree depth) to the root.
2. **Re-anchor + seed.** Dirty distances reset to ``INF``; one batched
   relaxation applies every clean→dirty arc (re-attaching orphans to
   the clean region at their best one-hop bound) and every improved arc
   (inserts / weight decreases). The changed set is the repair frontier.
3. **Windowed drain.** Everything except the frontier starts settled;
   the configured stepping strategy picks ``[lo, hi)`` windows and each
   window relaxes *all* out-arcs of its active vertices to fixpoint
   before settling them — the standard window-safety argument makes the
   result exact for any strategy, including Δ-stepping via the
   incremental bucket index.

The **cost model** falls back before the drain: when the disturbed
region (dirty + frontier) exceeds ``max_dirty_fraction`` of the graph, a
fresh solve is cheaper and the caller is told to run one
(``RepairResult.fallback``), mirroring the broker's degradation ladder
style of explicit, observable decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.bucket_index import BucketIndex
from repro.core.distances import INF
from repro.core.paths import build_parent_tree
from repro.core.relax import apply_relaxations
from repro.core.stepping import make_strategy

__all__ = ["RepairResult", "repair_sssp"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one incremental repair.

    ``distances`` is ``None`` exactly when ``fallback`` is True — the
    caller must run a fresh solve. ``dirty`` counts vertices orphaned by
    the damage pass, ``seeds`` the relaxation records applied in the
    seeding phase, ``frontier`` the vertices the drain started from,
    ``steps`` the strategy windows drained and ``relax_records`` the
    total relaxation records the drain generated.
    """

    distances: np.ndarray | None
    parents: np.ndarray | None
    fallback: bool
    reason: str
    dirty: int
    seeds: int
    frontier: int
    steps: int
    relax_records: int
    wall_time_s: float
    strategy: str


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` vectorised.

    ``counts`` must be strictly positive (filter zero-degree segments
    first — the boundary trick below cannot represent empty segments).
    """
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    ends = np.cumsum(counts)
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


def _gather_arcs(graph, vertices: np.ndarray):
    """All out-arcs of ``vertices``: ``(tails_repeated, heads, weights)``."""
    degrees = graph.degrees[vertices]
    nonzero = degrees > 0
    v = vertices[nonzero]
    deg = degrees[nonzero]
    if v.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    flat = _expand_ranges(graph.indptr[v], deg)
    return np.repeat(v, deg), graph.adj[flat], graph.weights[flat]


def _damage_closure(graph, d: np.ndarray, delta, root: int) -> np.ndarray:
    """Boolean dirty mask: vertices whose old distance lost every certificate.

    Works entirely on the *old* distances and the *new* graph, per the
    classic delta-propagation formulation. The root and unreached
    vertices are never dirty.
    """
    n = graph.num_vertices
    dirty = np.zeros(n, dtype=bool)
    wt, wh, ww = delta.worsened_tails, delta.worsened_heads, delta.worsened_weights
    # Heads of worsened arcs that were tight under the old distances lost
    # *a* certificate; whether they lost every certificate is decided by
    # the worklist scan below.
    was_tight = (d[wt] < INF) & (d[wh] < INF) & (d[wt] + ww == d[wh])
    seeds = [wh[was_tight]]
    # Heads of *improved* arcs can lose their certificate too: the delta
    # carries only new weights, so the old-tightness of a reweighted-down
    # arc cannot be tested — seed its head unconditionally (a head whose
    # certificates all survive just stays clean in the first scan).
    ih = delta.improved_heads
    if ih.size:
        seeds.append(ih)
    work = np.unique(np.concatenate(seeds))
    work = work[(work != root) & (d[work] < INF)]
    if work.size == 0:
        return dirty
    while work.size:
        # Certificate scan: v keeps its distance iff some in-arc (u, v, w)
        # of the NEW graph has u clean, w > 0 and d[u] + w == d[v]. The
        # graph is symmetrized, so in-arcs of v are its out-arcs reversed.
        tails, nbrs, w = _gather_arcs(graph, work)
        cert = (
            (w > 0)
            & ~dirty[nbrs]
            & (d[nbrs] < INF)
            & (d[nbrs] + w == d[tails])
        )
        has_cert = np.zeros(work.size, dtype=bool)
        if cert.any():
            # Map each arc back to its position in `work` (work is sorted
            # unique, tails repeats its entries in order).
            has_cert[np.searchsorted(work, tails[cert])] = True
        newly = work[~has_cert]
        if newly.size == 0:
            break
        dirty[newly] = True
        # Re-examine shortest-path children of the newly dirty vertices:
        # their certificate through the dead parent just died too.
        tails, nbrs, w = _gather_arcs(graph, newly)
        child = (
            (d[tails] < INF)
            & (d[nbrs] < INF)
            & (d[tails] + w == d[nbrs])
            & ~dirty[nbrs]
            & (nbrs != root)
        )
        work = np.unique(nbrs[child])
    return dirty


def repair_sssp(
    ctx,
    root: int,
    old_distances: np.ndarray,
    delta,
    *,
    max_dirty_fraction: float = 0.25,
    with_parents: bool = False,
) -> RepairResult:
    """Repair ``old_distances`` into exact distances for ``ctx.graph``.

    Parameters
    ----------
    ctx:
        Execution context of the **new** snapshot (its graph, config and
        accounting). The strategy is taken from ``ctx.config.strategy``.
    root:
        The SSSP root ``old_distances`` solves.
    old_distances:
        Exact distances on the parent snapshot (never mutated).
    delta:
        :class:`~repro.dynamic.updates.EdgeDelta` from parent to new.
    max_dirty_fraction:
        Fall back to a fresh solve when ``(dirty + frontier) / n``
        exceeds this — the cost-model guard.
    with_parents:
        Also derive a parent tree from the repaired distances.

    Only symmetrized undirected graphs are supported (the damage pass
    reads in-arcs through symmetry — the setting of the paper and every
    generator in this repo).
    """
    graph = ctx.graph
    if not graph.undirected:
        raise ValueError("repair_sssp requires a symmetrized undirected graph")
    n = graph.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    d = np.array(old_distances, dtype=np.int64, copy=True)
    if d.shape != (n,):
        raise ValueError("old_distances shape mismatch")
    if d[root] != 0:
        raise ValueError("old_distances is not rooted at the given root")
    start = time.perf_counter()
    strategy_name = ctx.config.strategy

    def bail(reason: str, dirty_count: int, seeds: int, frontier: int) -> RepairResult:
        return RepairResult(
            distances=None,
            parents=None,
            fallback=True,
            reason=reason,
            dirty=dirty_count,
            seeds=seeds,
            frontier=frontier,
            steps=0,
            relax_records=0,
            wall_time_s=time.perf_counter() - start,
            strategy=strategy_name,
        )

    # ------------------------------------------------ phase 1: damage
    dirty = _damage_closure(graph, d, delta, root)
    dirty_count = int(dirty.sum())
    d[dirty] = INF

    # ------------------------------------------------ phase 2: seeds
    seed_dst = []
    seed_nd = []
    if dirty_count:
        # Re-anchor orphans: best one-hop bound from the clean region.
        # In-arcs of dirty vertices via symmetry (out-arc (v, u, w) of a
        # dirty v mirrors in-arc (u, v, w)).
        dv, du, dw = _gather_arcs(graph, np.nonzero(dirty)[0])
        anchor = ~dirty[du] & (d[du] < INF)
        seed_dst.append(dv[anchor])
        seed_nd.append(d[du][anchor] + dw[anchor])
    it, ih, iw = delta.improved_tails, delta.improved_heads, delta.improved_weights
    if it.size:
        live = d[it] < INF
        seed_dst.append(ih[live])
        seed_nd.append(d[it][live] + iw[live])
    seeds = 0
    if seed_dst:
        dst = np.concatenate(seed_dst)
        nd = np.concatenate(seed_nd)
        seeds = int(dst.size)
        frontier = apply_relaxations(d, dst, nd)
    else:
        frontier = np.empty(0, dtype=np.int64)

    # ------------------------------------------------ cost-model gate
    # Touched region = dirty ∪ frontier (re-anchored orphans are in both;
    # count them once so max_dirty_fraction=1.0 can never trip the gate).
    touched = dirty_count + int(np.count_nonzero(~dirty[frontier]))
    if n and touched / n > max_dirty_fraction:
        return bail("dirty-region", dirty_count, seeds, int(frontier.size))

    # ------------------------------------------------ phase 3: drain
    settled = np.ones(n, dtype=bool)
    settled[frontier] = False
    strategy = make_strategy(ctx.config)
    strategy.prepare(ctx)
    index = None
    if strategy.uses_bucket_index:
        index = BucketIndex(ctx.config.delta, d, settled)
    indptr = graph.indptr
    degrees = graph.degrees
    steps = 0
    relax_records = 0
    ordinal = 0
    while True:
        step = strategy.next_step(ctx, d, settled, index, ordinal)
        if step is None:
            break
        ordinal += 1
        steps += 1
        while True:
            if index is not None:
                active = index.members(step.key)
            else:
                active = np.nonzero(~settled & (d < step.hi))[0]
            if active.size == 0:
                break
            # Relax every out-arc of the active set (no short/long split:
            # the repair frontier is small, a second phase buys nothing),
            # then settle them; any vertex improved back into the window
            # — including an active one — is re-activated next round.
            src_d = d[active]
            deg = degrees[active]
            nonzero = deg > 0
            settled[active] = True
            if index is not None:
                index.on_settled(active)
            if not nonzero.any():
                continue
            flat = _expand_ranges(indptr[active[nonzero]], deg[nonzero])
            dst = graph.adj[flat]
            nd = np.repeat(src_d[nonzero], deg[nonzero]) + graph.weights[flat]
            relax_records += int(dst.size)
            changed = apply_relaxations(d, dst, nd)
            if changed.size:
                settled[changed] = False
                if index is not None:
                    index.on_relaxed(changed, d)

    parents = build_parent_tree(graph, d, root) if with_parents else None
    return RepairResult(
        distances=d,
        parents=parents,
        fallback=False,
        reason="",
        dirty=dirty_count,
        seeds=seeds,
        frontier=int(frontier.size),
        steps=steps,
        relax_records=relax_records,
        wall_time_s=time.perf_counter() - start,
        strategy=strategy_name,
    )
