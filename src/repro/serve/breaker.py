"""Per-failure-class circuit breaker for the serving plane (DESIGN.md §12).

When solves keep failing the same way — raising, timing out, or producing
corrupted output — continuing to throw full solve attempts at the engine
wastes the latency budget of every queued request behind them. The
breaker watches *consecutive* failures per failure class
(:data:`~repro.serve.retry.FAILURE_CLASSES`) and trips that class
**open** at a threshold. While any class is open the broker switches to
its degradation ladder: serve cache hits flagged ``stale_ok``, fall back
to the PR 2 bounded-exact Bellman-Ford path for small graphs, or shed
with a typed :class:`~repro.serve.request.ServiceUnavailable`.

After ``recovery_time_s`` an open class becomes **half-open**: a limited
number of probe requests are let through on the primary path, and their
outcome decides — success closes every half-open class, failure re-opens
them all (one probe verdict covers the shared engine underneath).

Determinism: the clock is injectable (``clock=``), so the journey
harness drives transitions with a fake clock and replays them exactly;
every transition is recorded in :attr:`CircuitBreaker.transitions` as
``(t, class, from_state, to_state)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .retry import FAILURE_CLASSES

__all__ = ["BreakerConfig", "CircuitBreaker", "STATES"]

STATES = ("closed", "open", "half_open")
_STATE_CODE = {"closed": 0, "open": 1, "half_open": 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Breaker thresholds and the degradation-ladder bounds.

    ``failure_threshold`` consecutive failures of one class open it;
    ``recovery_time_s`` later it turns half-open and admits
    ``half_open_probes`` probe solves. The ladder's bounded-exact
    fallback is only offered on graphs up to ``degrade_max_vertices``
    vertices, running :meth:`~repro.runtime.watchdog.DeadlineConfig.degraded`
    with ``degrade_supersteps`` before the Bellman-Ford collapse.
    """

    failure_threshold: int = 3
    recovery_time_s: float = 0.25
    half_open_probes: int = 1
    degrade_max_vertices: int = 1 << 17
    degrade_supersteps: int = 8
    classes: tuple[str, ...] = FAILURE_CLASSES

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_time_s < 0:
            raise ValueError("recovery_time_s must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.degrade_max_vertices < 0:
            raise ValueError("degrade_max_vertices must be >= 0")
        if self.degrade_supersteps < 1:
            raise ValueError("degrade_supersteps must be >= 1")
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ValueError("at least one failure class required")
        for cls in self.classes:
            if cls not in FAILURE_CLASSES:
                raise ValueError(
                    f"unknown failure class {cls!r}; "
                    f"choose from {FAILURE_CLASSES}"
                )


class _ClassState:
    __slots__ = ("state", "consecutive_failures", "opened_at", "probes_out")

    def __init__(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probes_out = 0


class CircuitBreaker:
    """Thread-safe per-class state machine with an injectable clock.

    The broker calls :meth:`acquire` before each solve attempt — the
    decision (``"primary"``, ``"probe"`` or ``"degraded"``) says which
    path the attempt takes — and :meth:`on_result` after, with the
    failure class on failure. Open→half-open happens lazily on the next
    read once ``recovery_time_s`` has elapsed, so no background timer is
    needed and transitions are a pure function of (clock, call sequence).
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock=time.monotonic,
        registry=None,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._registry = registry
        self._lock = threading.Lock()
        self._classes = {cls: _ClassState() for cls in self.config.classes}
        #: Lock-free steady-state flag: True iff every class is closed.
        #: Maintained by :meth:`_transition`; read without the lock on the
        #: per-request hot path (:attr:`degraded`), where a stale read is
        #: benign — the next locked call observes the transition.
        self._all_closed = True
        #: chronological ``(t, class, from_state, to_state)`` records —
        #: the journey harness asserts these are identical across replays.
        self.transitions: list[tuple[float, str, str, str]] = []
        for cls in self._classes:
            self._gauge(cls, "closed")

    # ------------------------------------------------------------------
    def _gauge(self, cls: str, state: str) -> None:
        if self._registry is not None:
            self._registry.set_gauge(
                "serve_breaker_state",
                _STATE_CODE[state],
                help="circuit-breaker state per failure class "
                     "(0=closed, 1=open, 2=half_open)",
                **{"class": cls},
            )

    def _transition(self, cls: str, state: _ClassState, to: str) -> None:
        now = self._clock()
        self.transitions.append((now, cls, state.state, to))
        state.state = to
        if to == "open":
            state.opened_at = now
            state.probes_out = 0
        elif to == "half_open":
            state.probes_out = 0
        elif to == "closed":
            state.consecutive_failures = 0
        self._gauge(cls, to)
        self._all_closed = all(
            s.state == "closed" for s in self._classes.values()
        )
        if self._registry is not None:
            self._registry.inc(
                "serve_breaker_transitions_total",
                help="circuit-breaker state transitions",
                **{"class": cls, "to": to},
            )

    def _refresh(self) -> None:
        """Lazily promote open classes to half-open once recovery elapses."""
        now = self._clock()
        for cls, state in self._classes.items():
            if (
                state.state == "open"
                and now - state.opened_at >= self.config.recovery_time_s
            ):
                self._transition(cls, state, "half_open")

    # ------------------------------------------------------------------
    def acquire(self) -> str:
        """Decide the path of the next solve attempt.

        ``"primary"`` — all classes closed, normal solve. ``"probe"`` —
        some class is half-open and a probe slot was reserved; the
        attempt's outcome feeds the half-open verdict. ``"degraded"`` —
        some class is open (or half-open with all probe slots taken);
        the broker must use the degradation ladder.
        """
        with self._lock:
            self._refresh()
            if all(s.state == "closed" for s in self._classes.values()):
                return "primary"
            half_open = [
                s for s in self._classes.values() if s.state == "half_open"
            ]
            if half_open and all(s.state != "open" for s in self._classes.values()):
                if all(
                    s.probes_out < self.config.half_open_probes
                    for s in half_open
                ):
                    for s in half_open:
                        s.probes_out += 1
                    return "probe"
            return "degraded"

    def on_result(self, decision: str, failure_class: str | None = None) -> None:
        """Record the outcome of an attempt admitted under ``decision``.

        ``failure_class=None`` means success. Probe success closes every
        half-open class; probe failure re-opens them all. Primary
        failures bump the class's consecutive counter and open it at the
        threshold; primary success resets all counters.
        """
        if decision == "degraded":
            return  # ladder outcomes never feed the state machine
        with self._lock:
            if decision == "probe":
                half_open = [
                    (cls, s)
                    for cls, s in self._classes.items()
                    if s.state == "half_open"
                ]
                if failure_class is None:
                    for cls, s in half_open:
                        self._transition(cls, s, "closed")
                else:
                    for cls, s in half_open:
                        self._transition(cls, s, "open")
                    state = self._classes.get(failure_class)
                    if state is not None:
                        state.consecutive_failures += 1
                return
            # primary path
            if failure_class is None:
                for s in self._classes.values():
                    s.consecutive_failures = 0
                return
            state = self._classes.get(failure_class)
            if state is None:
                return  # untracked class: no breaker opinion
            state.consecutive_failures += 1
            if (
                state.state == "closed"
                and state.consecutive_failures >= self.config.failure_threshold
            ):
                self._transition(failure_class, state, "open")

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when any class is not closed (the ladder is in effect)."""
        if self._all_closed:
            # all-closed is the steady state and nothing needs refreshing
            # (only open classes are ever lazily promoted), so skip the
            # lock on the per-request hot path
            return False
        with self._lock:
            self._refresh()
            return any(s.state != "closed" for s in self._classes.values())

    def state_of(self, failure_class: str) -> str:
        with self._lock:
            self._refresh()
            return self._classes[failure_class].state

    def states(self) -> dict[str, str]:
        """Per-class state map (one consistent cut, for dashboards)."""
        with self._lock:
            self._refresh()
            return {cls: s.state for cls, s in self._classes.items()}

    def open_classes(self) -> tuple[str, ...]:
        with self._lock:
            self._refresh()
            return tuple(
                cls
                for cls, s in self._classes.items()
                if s.state != "closed"
            )
