"""Fault injection and self-healing recovery (DESIGN.md §7).

The contract under test: for every fault class the recovered distances are
*bit-identical* to the fault-free run (and to the Dijkstra reference), the
structural validator accepts them, and all recovery overhead is charged to
the separable ``recovery`` phase — which reports exactly zero traffic when
no fault is injected.
"""

import numpy as np
import pytest

from repro.core.reference import dijkstra_reference
from repro.core.validation import validate_sssp_structure
from repro.graph.partition import BlockPartition
from repro.runtime.comm import Communicator
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics
from repro.spmd import (
    FaultPlan,
    FaultyMailbox,
    Mailbox,
    RankCrash,
    RankStall,
    ReliableMailbox,
    solve_with_faults,
    spmd_bellman_ford,
    spmd_delta_stepping,
)


def make_comm(p=3, n=12):
    machine = MachineConfig(num_ranks=p, threads_per_rank=1)
    metrics = Metrics(num_ranks=p, threads_per_rank=1)
    return Communicator(machine, BlockPartition(n, p), metrics), metrics


# ----------------------------------------------------------------------
# Mailbox edge cases (post-time validation, pre-charge column check)
# ----------------------------------------------------------------------
class TestMailboxValidation:
    def test_post_rejects_out_of_range_destination(self):
        comm, _ = make_comm()
        mailbox = Mailbox(3, comm)
        with pytest.raises(ValueError, match="destination rank 3"):
            mailbox.post(0, np.array([1, 3]), np.array([5, 6]))
        with pytest.raises(ValueError, match="destination rank -1"):
            mailbox.post(0, np.array([-1]), np.array([5]))

    def test_post_empty_batch_is_noop(self):
        comm, metrics = make_comm()
        mailbox = Mailbox(3, comm)
        mailbox.post(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        inboxes = mailbox.deliver(16)
        assert all(box[0].size == 0 for box in inboxes)

    def test_column_mismatch_detected_before_any_charge(self):
        comm, metrics = make_comm()
        mailbox = Mailbox(3, comm)
        mailbox.post(0, np.array([1]), np.array([5]), np.array([50]))
        with pytest.raises(ValueError, match="columns"):
            mailbox.deliver(16, num_columns=3)
        # The failed deliver must not have half-updated the metrics.
        assert metrics.total_bytes == 0
        assert len(metrics.records) == 0

    def test_empty_superstep_delivers_empty_inboxes(self):
        comm, metrics = make_comm()
        mailbox = Mailbox(3, comm)
        inboxes = mailbox.deliver(16)
        assert len(inboxes) == 3
        assert all(box[0].size == 0 for box in inboxes)
        assert metrics.total_bytes == 0


# ----------------------------------------------------------------------
# Reliable transport over a faulty wire
# ----------------------------------------------------------------------
def run_exchange(mailbox):
    """Post a fixed cross-rank workload and deliver it."""
    mailbox.post(0, np.array([1, 2, 1]), np.array([5, 9, 6]),
                 np.array([50, 90, 60]))
    mailbox.post(1, np.array([0, 2]), np.array([1, 10]), np.array([11, 101]))
    mailbox.post(2, np.array([2, 0]), np.array([8, 0]), np.array([80, 1]))
    return mailbox.deliver(16)


def inbox_sets(inboxes):
    return [sorted(zip(box[0].tolist(), box[1].tolist())) for box in inboxes]


class TestReliableMailbox:
    def test_perfect_wire_matches_plain_mailbox_exactly(self):
        comm_a, metrics_a = make_comm()
        comm_b, metrics_b = make_comm()
        plain = run_exchange(Mailbox(3, comm_a))
        reliable = run_exchange(ReliableMailbox(3, comm_b))
        for a, b in zip(plain, reliable):
            for col_a, col_b in zip(a, b):
                assert np.array_equal(col_a, col_b)
        # Identical accounting, record by record.
        assert [vars(r) for r in metrics_a.records] == [
            vars(r) for r in metrics_b.records
        ]
        assert metrics_b.recovery_bytes == 0
        assert metrics_b.recovery.recovery_supersteps == 0

    def test_loss_recovered_exactly_once(self):
        comm, metrics = make_comm()
        mailbox = FaultyMailbox(3, comm, FaultPlan(seed=5, loss_rate=0.6))
        inboxes = run_exchange(mailbox)
        comm_ref, _ = make_comm()
        expected = inbox_sets(run_exchange(Mailbox(3, comm_ref)))
        assert inbox_sets(inboxes) == expected
        assert metrics.recovery.retries > 0
        assert metrics.recovery_bytes > 0

    def test_duplication_deduped(self):
        comm, metrics = make_comm()
        mailbox = FaultyMailbox(3, comm, FaultPlan(seed=5, dup_rate=1.0))
        inboxes = run_exchange(mailbox)
        comm_ref, _ = make_comm()
        expected = inbox_sets(run_exchange(Mailbox(3, comm_ref)))
        # Every record was duplicated on the wire, none arrives twice.
        assert inbox_sets(inboxes) == expected
        assert metrics.recovery.faults_injected["duplicate"] > 0

    def test_reordering_preserves_record_set(self):
        comm, metrics = make_comm()
        mailbox = FaultyMailbox(3, comm, FaultPlan(seed=5, reorder_rate=1.0))
        inboxes = run_exchange(mailbox)
        comm_ref, _ = make_comm()
        expected = inbox_sets(run_exchange(Mailbox(3, comm_ref)))
        assert inbox_sets(inboxes) == expected

    def test_delay_eventually_delivers(self):
        comm, metrics = make_comm()
        mailbox = FaultyMailbox(3, comm, FaultPlan(seed=5, delay_rate=0.8))
        inboxes = run_exchange(mailbox)
        comm_ref, _ = make_comm()
        expected = inbox_sets(run_exchange(Mailbox(3, comm_ref)))
        assert inbox_sets(inboxes) == expected

    def test_adversarial_total_loss_still_terminates(self):
        # 100% loss on every attempt: the out-of-band heal after
        # max_attempts must still deliver everything.
        comm, metrics = make_comm()
        plan = FaultPlan(seed=5, loss_rate=1.0, faults_on_retry=True,
                         max_attempts=3)
        mailbox = FaultyMailbox(3, comm, plan)
        inboxes = run_exchange(mailbox)
        comm_ref, _ = make_comm()
        expected = inbox_sets(run_exchange(Mailbox(3, comm_ref)))
        assert inbox_sets(inboxes) == expected
        assert metrics.recovery.retries >= 3


# ----------------------------------------------------------------------
# Fault plan (validation, parsing, determinism)
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError, match="max_delay"):
            FaultPlan(max_delay=0)
        with pytest.raises(ValueError, match="crash"):
            FaultPlan(crashes=(RankCrash(-1, 0),))
        with pytest.raises(ValueError, match="stall"):
            FaultPlan(stalls=(RankStall(0, 0, 0),))

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "loss=0.05,dup=0.02,seed=3,crash=1@4+0@9,stall=2@5x3,ckpt=2"
        )
        assert plan.loss_rate == 0.05
        assert plan.dup_rate == 0.02
        assert plan.seed == 3
        assert plan.crashes == (RankCrash(1, 4), RankCrash(0, 9))
        assert plan.stalls == (RankStall(2, 5, 3),)
        assert plan.checkpoint_interval == 2

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("gamma=1")
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_spec("loss")

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(loss_rate=0.1).injects_anything
        assert FaultPlan(crashes=(RankCrash(0, 0),)).injects_anything

    def test_rank_out_of_machine_range_rejected(self, rmat1_small, machine4):
        plan = FaultPlan(crashes=(RankCrash(9, 4),))
        with pytest.raises(ValueError, match="rank 9.*only 4 ranks"):
            spmd_delta_stepping(rmat1_small, 0, machine4, delta=25,
                                faults=plan)
        with pytest.raises(ValueError, match="rank 7"):
            spmd_bellman_ford(rmat1_small, 0, machine4,
                              faults=FaultPlan(stalls=(RankStall(7, 2),)))

    def test_superstep_window(self):
        plan = FaultPlan(loss_rate=0.1, first_superstep=2, last_superstep=5)
        assert not plan.active_at(1)
        assert plan.active_at(2)
        assert plan.active_at(5)
        assert not plan.active_at(6)

    def test_same_seed_identical_schedule(self, rmat1_small, machine4):
        plan = FaultPlan(seed=9, loss_rate=0.08, dup_rate=0.03,
                         delay_rate=0.03, reorder_rate=0.1)
        d1, ctx1 = spmd_delta_stepping(rmat1_small, 0, machine4, delta=25,
                                       faults=plan)
        d2, ctx2 = spmd_delta_stepping(rmat1_small, 0, machine4, delta=25,
                                       faults=plan)
        assert np.array_equal(d1, d2)
        assert ctx1.metrics.recovery.events == ctx2.metrics.recovery.events
        assert ctx1.metrics.summary() == ctx2.metrics.summary()

    def test_different_seed_different_schedule(self, rmat1_small, machine4):
        d1, ctx1 = spmd_delta_stepping(
            rmat1_small, 0, machine4, delta=25,
            faults=FaultPlan(seed=1, loss_rate=0.08),
        )
        d2, ctx2 = spmd_delta_stepping(
            rmat1_small, 0, machine4, delta=25,
            faults=FaultPlan(seed=2, loss_rate=0.08),
        )
        assert np.array_equal(d1, d2)  # answers agree...
        # ...but the injected fault schedules differ.
        assert ctx1.metrics.recovery.events != ctx2.metrics.recovery.events


# ----------------------------------------------------------------------
# End-to-end: every fault class recovers the exact fault-free answer
# ----------------------------------------------------------------------
FAULT_CLASSES = [
    pytest.param(FaultPlan(seed=3, loss_rate=0.1), id="loss"),
    pytest.param(FaultPlan(seed=3, dup_rate=0.1), id="duplication"),
    pytest.param(FaultPlan(seed=3, reorder_rate=0.5), id="reordering"),
    pytest.param(FaultPlan(seed=3, delay_rate=0.1), id="delay"),
    pytest.param(FaultPlan(seed=3, crashes=(RankCrash(1, 4),)), id="crash"),
    pytest.param(FaultPlan(seed=3, stalls=(RankStall(2, 3, 3),)), id="stall"),
    pytest.param(
        FaultPlan(seed=3, loss_rate=0.05, dup_rate=0.03, reorder_rate=0.2,
                  delay_rate=0.03, crashes=(RankCrash(0, 6), RankCrash(2, 11)),
                  stalls=(RankStall(1, 8),)),
        id="combined",
    ),
]


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("plan", FAULT_CLASSES)
    def test_delta_stepping_distances_bit_identical(
        self, rmat1_small, machine4, plan
    ):
        ref = dijkstra_reference(rmat1_small, 0)
        clean, _ = spmd_delta_stepping(rmat1_small, 0, machine4, delta=25)
        faulty, ctx = spmd_delta_stepping(rmat1_small, 0, machine4, delta=25,
                                          faults=plan)
        assert np.array_equal(clean, ref)
        assert np.array_equal(faulty, ref)
        assert validate_sssp_structure(rmat1_small, 0, faulty).valid
        if plan.crashes:
            assert ctx.metrics.recovery.rank_restarts >= 1

    @pytest.mark.parametrize("plan", FAULT_CLASSES)
    def test_bellman_ford_distances_bit_identical(
        self, rmat1_small, machine4, plan
    ):
        ref = dijkstra_reference(rmat1_small, 0)
        faulty, _ = spmd_bellman_ford(rmat1_small, 0, machine4, faults=plan)
        assert np.array_equal(faulty, ref)

    def test_full_composition_under_faults(self, rmat1_small, machine4):
        from repro.core.config import SolverConfig

        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, pushpull_estimator="expectation")
        ref = dijkstra_reference(rmat1_small, 0)
        plan = FaultPlan(seed=3, loss_rate=0.05, dup_rate=0.03,
                         crashes=(RankCrash(1, 5),))
        faulty, ctx = spmd_delta_stepping(rmat1_small, 0, machine4,
                                          config=cfg, faults=plan)
        assert np.array_equal(faulty, ref)
        assert ctx.metrics.recovery.checkpoints_taken >= 1


# ----------------------------------------------------------------------
# Fault-free transparency: no faults => no overhead, bit-exact metrics
# ----------------------------------------------------------------------
class TestFaultFreeTransparency:
    def test_faults_none_is_bitexact_including_metrics(
        self, rmat1_small, machine4
    ):
        d_none, ctx_none = spmd_delta_stepping(rmat1_small, 0, machine4,
                                               delta=25, faults=None)
        d_base, ctx_base = spmd_delta_stepping(rmat1_small, 0, machine4,
                                               delta=25)
        assert np.array_equal(d_none, d_base)
        assert ctx_none.metrics.summary() == ctx_base.metrics.summary()
        assert ctx_none.metrics.recovery_bytes == 0

    def test_empty_plan_recovery_traffic_is_zero(self, rmat1_small, machine4):
        d_base, ctx_base = spmd_delta_stepping(rmat1_small, 0, machine4,
                                               delta=25)
        d_empty, ctx_empty = spmd_delta_stepping(rmat1_small, 0, machine4,
                                                 delta=25, faults=FaultPlan())
        assert np.array_equal(d_empty, d_base)
        rec = ctx_empty.metrics.recovery
        assert ctx_empty.metrics.recovery_bytes == 0
        assert rec.recovery_supersteps == 0
        assert rec.retries == 0
        assert rec.rank_restarts == 0
        assert rec.healing_sweeps == 0
        assert rec.checkpoints_taken >= 1
        # Algorithm-phase accounting is untouched by the recovery machinery:
        # only recovery-kind records may differ from the plain run.
        algo = lambda m: [  # noqa: E731
            vars(r) for r in m.records if r.phase_kind != "recovery"
        ]
        assert algo(ctx_empty.metrics) == algo(ctx_base.metrics)


# ----------------------------------------------------------------------
# High-level entry point
# ----------------------------------------------------------------------
class TestSolveWithFaults:
    def test_solve_with_faults_result(self, rmat1_small):
        plan = FaultPlan(seed=2, loss_rate=0.05)
        res = solve_with_faults(rmat1_small, 0, plan, num_ranks=4,
                                threads_per_rank=4, validate="structural")
        ref = dijkstra_reference(rmat1_small, 0)
        assert np.array_equal(res.distances, ref)
        assert res.algorithm.endswith("+faults")
        assert res.metrics.summary()["resent_bytes"] > 0

    def test_bellman_ford_entry(self, rmat1_small):
        plan = FaultPlan(seed=2, loss_rate=0.05)
        res = solve_with_faults(rmat1_small, 0, plan, algorithm="bellman-ford",
                                num_ranks=4, threads_per_rank=4)
        assert np.array_equal(res.distances,
                              dijkstra_reference(rmat1_small, 0))
        assert res.algorithm.startswith("spmd-bellman-ford")
