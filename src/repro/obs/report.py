"""Trace loading and the ``trace-report`` text renderer.

:func:`load_trace` reads either artifact format produced by
:mod:`repro.obs.export` — the lossless JSONL event log or the
Chrome/Perfetto JSON — into one normalized :class:`LoadedTrace`.
:func:`render_report` turns that into the aligned-text summary the
``python -m repro trace-report`` subcommand prints: run totals, wall vs.
simulated time per phase, per-rank busy time, the drift report and the
top spans by wall duration. All tables go through
:func:`repro.util.tables.format_table`, the same helper the analysis
timeline renderer uses.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import format_table

__all__ = ["LoadedTrace", "load_trace", "render_report", "drift_table"]


@dataclass
class LoadedTrace:
    """Normalized view of a trace file (either format).

    ``spans``/``instants``/``records`` follow the JSONL event schema; a
    Perfetto file reconstructs them from its tracks (wall-clock deltas of
    individual records are not stored there and come back as ``None``).
    """

    format: str
    path: str
    meta: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, Any] | None = None
    drift: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    instants: list[dict[str, Any]] = field(default_factory=list)
    records: list[dict[str, Any]] = field(default_factory=list)
    lines: list[dict[str, Any]] = field(default_factory=list)
    """Raw JSONL events (empty for a Perfetto file)."""
    raw: dict[str, Any] | None = None
    """Raw ``trace_events`` object (``None`` for a JSONL file)."""


def _load_jsonl(path: str, lines: list[dict[str, Any]]) -> LoadedTrace:
    trace = LoadedTrace(format="jsonl", path=path, lines=lines)
    for ev in lines:
        typ = ev.get("type")
        if typ == "meta":
            trace.meta = ev
        elif typ == "span":
            trace.spans.append(ev)
        elif typ == "instant":
            trace.instants.append(ev)
        elif typ == "record":
            trace.records.append(ev)
        elif typ == "summary":
            trace.summary = ev.get("summary")
            trace.drift = ev.get("drift") or []
            trace.meta.setdefault("wall_total", ev.get("wall_total"))
            trace.meta.setdefault("sim_total", ev.get("sim_total"))
    return trace


def _load_perfetto(path: str, data: dict[str, Any]) -> LoadedTrace:
    trace = LoadedTrace(format="perfetto", path=path, raw=data)
    other = data.get("otherData") or {}
    trace.meta = {"type": "meta", **other}
    trace.summary = other.get("summary")
    trace.drift = other.get("drift") or []
    by_step: dict[int, dict[str, Any]] = {}
    for ev in data.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "X" and ev.get("pid") == 0:
            trace.spans.append(
                {
                    "type": "span",
                    "name": ev.get("name"),
                    "cat": ev.get("cat"),
                    "ts": (ev.get("ts") or 0) / 1e6,
                    "dur": (ev.get("dur") or 0) / 1e6,
                    "sim_ts": None,
                    "sim_dur": (ev.get("args") or {}).get("sim_dur_s"),
                    "args": ev.get("args") or {},
                }
            )
        elif ph == "i":
            trace.instants.append(
                {
                    "type": "instant",
                    "name": ev.get("name"),
                    "ts": (ev.get("ts") or 0) / 1e6,
                    "sim_ts": None,
                    "args": ev.get("args") or {},
                }
            )
        elif ph == "X" and ev.get("pid") == 2:
            args = ev.get("args") or {}
            step = args.get("step")
            if step is None:
                continue
            rec = by_step.setdefault(
                step,
                {
                    "type": "record",
                    "step": step,
                    "kind": ev.get("name"),
                    "phase": ev.get("cat"),
                    "ts": None,
                    "wall_dt": None,
                    "sim_ts": (ev.get("ts") or 0) / 1e6,
                    "sim_dt": 0.0,
                    "rank_sim": {},
                },
            )
            sim = (ev.get("dur") or 0) / 1e6
            rec["rank_sim"][ev.get("tid")] = sim
            # The busiest rank bounds the step — a faithful proxy for the
            # priced duration when wall data isn't in the file.
            rec["sim_dt"] = max(rec["sim_dt"], sim)
    num_ranks = trace.meta.get("num_ranks") or (
        max((max(r["rank_sim"], default=-1) for r in by_step.values()), default=-1)
        + 1
    )
    for step in sorted(by_step):
        rec = by_step[step]
        rec["rank_sim"] = [
            rec["rank_sim"].get(r, 0.0) for r in range(num_ranks)
        ]
        trace.records.append(rec)
    return trace


def load_trace(path: str) -> LoadedTrace:
    """Load a trace file, auto-detecting JSONL vs. Perfetto JSON."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    try:
        first_obj = json.loads(stripped.splitlines()[0])
    except json.JSONDecodeError:
        first_obj = None  # multi-line JSON (e.g. pretty-printed Perfetto)
    if isinstance(first_obj, dict) and "type" in first_obj:
        lines = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
        return _load_jsonl(path, lines)
    data = json.loads(text)
    if isinstance(data, dict) and "traceEvents" in data:
        return _load_perfetto(path, data)
    raise ValueError(f"{path}: neither a JSONL event log nor a trace_events file")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def drift_table(rows: list[dict[str, Any]]) -> str:
    """Render drift-monitor rows (wall vs. cost model per kind)."""
    if not rows:
        return "drift: (no records)"
    table = [
        {
            "kind": r["kind"],
            "records": r["records"],
            "wall_ms": r["wall_s"] * 1e3,
            "sim_us": r["sim_s"] * 1e6,
            "rel": r["rel"] if math.isfinite(r["rel"]) else "inf",
            "flag": "DRIFT" if r["flagged"] else "",
        }
        for r in rows
    ]
    return format_table(
        table, title="wall clock vs. cost model (rel = normalized ratio):"
    )


def _phase_table(records: list[dict[str, Any]]) -> str:
    phases: dict[str, dict[str, float]] = {}
    for rec in records:
        agg = phases.setdefault(
            rec["phase"], {"records": 0, "wall": 0.0, "sim": 0.0}
        )
        agg["records"] += 1
        agg["wall"] += rec.get("wall_dt") or 0.0
        agg["sim"] += rec.get("sim_dt") or 0.0
    have_wall = any(rec.get("wall_dt") is not None for rec in records)
    rows = []
    for phase in sorted(phases):
        agg = phases[phase]
        row = {"phase": phase, "records": int(agg["records"])}
        if have_wall:
            row["wall_ms"] = agg["wall"] * 1e3
        row["sim_us"] = agg["sim"] * 1e6
        rows.append(row)
    return format_table(rows, title="time by phase:")


def _rank_table(records: list[dict[str, Any]], sim_total: float | None) -> str:
    busy: list[float] = []
    for rec in records:
        for r, sim in enumerate(rec.get("rank_sim") or []):
            while len(busy) <= r:
                busy.append(0.0)
            busy[r] += sim
    rows = []
    for r, sim in enumerate(busy):
        row = {"rank": r, "busy_us": sim * 1e6}
        if sim_total:
            row["busy_frac"] = sim / sim_total
        rows.append(row)
    return format_table(rows, title="per-rank simulated busy time:")


def _span_table(spans: list[dict[str, Any]], top: int) -> str:
    ranked = sorted(spans, key=lambda s: s.get("dur") or 0.0, reverse=True)
    rows = []
    for ev in ranked[:top]:
        sim_dur = ev.get("sim_dur")
        rows.append(
            {
                "span": ev["name"],
                "cat": ev["cat"],
                "wall_ms": (ev.get("dur") or 0.0) * 1e3,
                "sim_us": "" if sim_dur is None else sim_dur * 1e6,
                "records": (ev.get("args") or {}).get("records", ""),
            }
        )
    return format_table(rows, title=f"top {min(top, len(ranked))} spans by wall time:")


def render_report(trace: LoadedTrace, *, top: int = 15) -> str:
    """Render the full text report for a loaded trace."""
    meta = trace.meta
    head = [f"trace report: {trace.path} ({trace.format})"]
    wall = meta.get("wall_total")
    sim = meta.get("sim_total")
    if wall is not None:
        head.append(f"wall time: {wall * 1e3:.2f} ms")
    if sim is not None:
        head.append(f"simulated time: {sim * 1e3:.4f} ms")
    head.append(
        f"ranks: {meta.get('num_ranks', '?')}  "
        f"spans: {len(trace.spans)}  records: {len(trace.records)}  "
        f"instants: {len(trace.instants)}"
    )
    parts = ["\n".join(head)]
    if trace.summary:
        keys = (
            "relaxations", "buckets", "phases",
            "short_phases", "long_phases", "bf_phases",
            "hybrid_switch_bucket", "degraded",
        )
        row = {k: trace.summary[k] for k in keys if k in trace.summary}
        if row:
            parts.append(format_table([row], title="run summary:"))
    if trace.records:
        parts.append(_phase_table(trace.records))
        parts.append(_rank_table(trace.records, sim))
    if trace.drift:
        parts.append(drift_table(trace.drift))
    if trace.spans:
        parts.append(_span_table(trace.spans, top))
    return "\n\n".join(parts)
