"""Parameter sweeps and weak-scaling drivers (Fig. 9–12).

The paper's scaling experiments are *weak scaling*: the number of vertices
per node is fixed (2^23 on Blue Gene/Q; configurable here) and the node
count grows, so the graph scale grows with the machine. These drivers
generate the graph for each configuration, run the requested algorithm
variants, and return one summary row per point — exactly the series the
paper's figures plot.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp
from repro.graph.csr import CSRGraph
from repro.graph.rmat import RMATParams, rmat_graph
from repro.graph.roots import choose_root
from repro.runtime.machine import MachineConfig

__all__ = ["delta_sweep", "weak_scaling"]


def delta_sweep(
    graph: CSRGraph,
    root: int,
    deltas: Sequence[int],
    *,
    algorithm: str = "delta",
    num_ranks: int = 8,
    threads_per_rank: int = 8,
    config_overrides: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Fig. 9 driver: run one algorithm across a range of Δ values."""
    rows: list[dict[str, Any]] = []
    for delta in deltas:
        result = solve_sssp(
            graph,
            root,
            algorithm=algorithm,
            delta=delta,
            config=(
                None
                if not config_overrides
                else _preset_with_overrides(algorithm, delta, config_overrides)
            ),
            num_ranks=num_ranks,
            threads_per_rank=threads_per_rank,
        )
        rows.append(
            {
                "delta": delta,
                "gteps": result.gteps,
                "relaxations": result.metrics.total_relaxations,
                "phases": result.metrics.total_phases,
                "buckets": result.metrics.buckets_processed,
                "time_s": result.cost.total_time,
            }
        )
    return rows


def _preset_with_overrides(
    algorithm: str, delta: int, overrides: dict[str, Any]
) -> SolverConfig:
    from repro.core.config import preset

    return preset(algorithm, delta).evolve(**overrides)


def weak_scaling(
    node_counts: Sequence[int],
    params: RMATParams,
    *,
    vertices_per_rank_log2: int = 12,
    algorithms: Sequence[tuple[str, str, int]] = (("OPT-25", "opt", 25),),
    threads_per_rank: int = 8,
    edge_factor: int = 16,
    seed: int = 0,
    root: int | None = None,
    machine_factory=None,
) -> list[dict[str, Any]]:
    """Fig. 10/11/12 driver: weak scaling over simulated node counts.

    For each node count ``P`` a fresh R-MAT graph of scale
    ``log2(P) + vertices_per_rank_log2`` is generated (the paper's
    weak-scaling protocol with 2^23 vertices per node, shrunk to
    reproduction scale) and each requested algorithm variant runs on a
    ``P``-rank machine. One row per (P, algorithm).
    """
    rows: list[dict[str, Any]] = []
    for nodes in node_counts:
        if nodes < 1 or nodes & (nodes - 1):
            raise ValueError("node counts must be powers of two")
        scale = nodes.bit_length() - 1 + vertices_per_rank_log2
        graph = rmat_graph(
            scale, edge_factor=edge_factor, params=params, seed=seed + scale
        )
        machine = (
            machine_factory(nodes)
            if machine_factory is not None
            else MachineConfig(num_ranks=nodes, threads_per_rank=threads_per_rank)
        )
        run_root = choose_root(graph, seed=seed) if root is None else root
        for label, name, delta in algorithms:
            result = solve_sssp(
                graph, run_root, algorithm=name, delta=delta, machine=machine
            )
            rows.append(
                {
                    "nodes": nodes,
                    "scale": scale,
                    "algorithm": label,
                    "gteps": result.gteps,
                    "relaxations": result.metrics.total_relaxations,
                    "buckets": result.metrics.buckets_processed,
                    "time_s": result.cost.total_time,
                    "bkt_s": result.cost.bucket_time,
                    "other_s": result.cost.other_time,
                }
            )
    return rows
