"""Input hardening of the graph persistence layer.

Corrupt, truncated or semantically invalid graph files must fail loudly
with a clear ``ValueError`` instead of propagating as wrong distances or
cryptic downstream index errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graph.builder import from_undirected_edges


@pytest.fixture
def small_graph():
    return from_undirected_edges(
        np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([5, 3, 7]), 4
    )


class TestEdgeListValidation:
    def _write(self, tmp_path, text):
        path = tmp_path / "edges.txt"
        path.write_text(text)
        return path

    def test_round_trip_still_works(self, tmp_path, small_graph):
        path = tmp_path / "g.txt"
        write_edge_list(small_graph, path)
        g = read_edge_list(path)
        assert np.array_equal(g.indptr, small_graph.indptr)
        assert np.array_equal(g.adj, small_graph.adj)
        assert np.array_equal(g.weights, small_graph.weights)

    def test_negative_weight_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 1 5\n1 2 -3\n")
        with pytest.raises(ValueError, match="negative edge weight"):
            read_edge_list(path)

    def test_negative_endpoint_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 1 5\n-1 2 3\n")
        with pytest.raises(ValueError, match="negative vertex id"):
            read_edge_list(path)

    def test_endpoint_out_of_declared_range_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 1 5\n1 9 3\n")
        with pytest.raises(ValueError, match="out of range"):
            read_edge_list(path, num_vertices=4)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = self._write(tmp_path, "0 1\n1 2\n")
        with pytest.raises(ValueError, match="three columns"):
            read_edge_list(path)

    def test_endpoints_within_explicit_range_accepted(self, tmp_path):
        path = self._write(tmp_path, "0 1 5\n")
        g = read_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10


class TestNpzValidation:
    def test_round_trip_still_works(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        save_npz(small_graph, path)
        g = load_npz(path)
        assert np.array_equal(g.indptr, small_graph.indptr)
        assert np.array_equal(g.adj, small_graph.adj)
        assert np.array_equal(g.weights, small_graph.weights)
        assert g.undirected == small_graph.undirected

    def test_missing_key_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        np.savez(path, indptr=small_graph.indptr, adj=small_graph.adj)
        with pytest.raises(ValueError, match="missing keys"):
            load_npz(path)

    def test_inconsistent_indptr_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        bad = small_graph.indptr.copy()
        bad[-1] += 4  # claims more arcs than the adjacency array holds
        np.savez(path, indptr=bad, adj=small_graph.adj,
                 weights=small_graph.weights, undirected=np.array([True]))
        with pytest.raises(ValueError, match="inconsistent"):
            load_npz(path)

    def test_decreasing_indptr_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        bad = small_graph.indptr.copy()
        bad[1], bad[2] = bad[2], bad[1] - 1  # force a decrease
        np.savez(path, indptr=bad, adj=small_graph.adj,
                 weights=small_graph.weights, undirected=np.array([True]))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_out_of_range_endpoint_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        bad = small_graph.adj.copy()
        bad[0] = small_graph.num_vertices + 7
        np.savez(path, indptr=small_graph.indptr, adj=bad,
                 weights=small_graph.weights, undirected=np.array([True]))
        with pytest.raises(ValueError, match="out of range"):
            load_npz(path)

    def test_negative_weight_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        bad = small_graph.weights.copy()
        bad[0] = -1
        np.savez(path, indptr=small_graph.indptr, adj=small_graph.adj,
                 weights=bad, undirected=np.array([True]))
        with pytest.raises(ValueError, match="negative edge weight"):
            load_npz(path)

    def test_weight_length_mismatch_rejected(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        np.savez(path, indptr=small_graph.indptr, adj=small_graph.adj,
                 weights=small_graph.weights[:-1],
                 undirected=np.array([True]))
        with pytest.raises(ValueError, match="differ in length"):
            load_npz(path)


class TestRootValidation:
    def test_solve_sssp_rejects_out_of_range_root(self, small_graph):
        from repro.core.solver import solve_sssp

        for bad in (-1, 4, 10_000):
            with pytest.raises(ValueError, match="out of range"):
                solve_sssp(small_graph, bad, num_ranks=2, threads_per_rank=2)

    def test_batch_solver_rejects_out_of_range_root(self, small_graph):
        from repro.core.solver import BatchSolver

        solver = BatchSolver(small_graph, num_ranks=2, threads_per_rank=2)
        with pytest.raises(ValueError, match="out of range"):
            solver.solve(-3)
        with pytest.raises(ValueError, match="out of range"):
            solver.solve(4)

    def test_solve_with_faults_rejects_out_of_range_root(self, small_graph):
        from repro.spmd.faults import FaultPlan, solve_with_faults

        with pytest.raises(ValueError, match="out of range"):
            solve_with_faults(small_graph, 99, FaultPlan(), num_ranks=2,
                              threads_per_rank=2)
