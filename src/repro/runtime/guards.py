"""Runtime invariant guards for SSSP solves (DESIGN.md §8).

The paper's correctness argument (Section III) rests on a handful of
skeleton invariants that hold for *every* member of the algorithm family
— plain Δ-stepping, pruning, IOS, the load-balanced variants, and the
hybrid Bellman-Ford tail alike (Dong et al.'s stepping-framework
observation). These guards check them *while the solve runs* instead of
only validating the final distance array:

- **Bucket monotonicity** — the bucket loop processes strictly increasing
  bucket indices; a repeated or decreasing index means re-expansion of
  settled work.
- **Distance monotonicity** — min-apply relaxation only ever lowers
  tentative distances; any elementwise increase outside an explicit
  rollback is corruption.
- **Settled finality** — once a vertex settles, its distance never
  changes and its settled flag never clears.
- **IOS edge conservation** — the inner/outer short-arc split partitions
  proposals exactly: inner targets fall below the bucket boundary, outer
  targets at or above it, and together they cover every scanned arc.
- **Recovery-traffic separation** — a fault-free, non-degraded solve
  charges zero bytes/phases/supersteps to the recovery phase, so PR 1's
  accounting can never leak into the paper-facing numbers.
- **Bucket-index equivalence** — the incremental bucket index
  (:class:`~repro.core.bucket_index.BucketIndex`) must agree with the
  from-scratch scan after every epoch: same per-vertex bucket assignment,
  same minimum non-empty bucket, same membership set.

Guards are built only when ``SolverConfig.paranoid`` is set (CLI
``--paranoid``); every hook site in the engines is gated on
``ctx.guards is not None``, so a disabled run executes not one extra
comparison. Guards charge no metrics and send no traffic — enabling them
must not perturb the accounting the SPMD-vs-orchestrated equality tests
pin down.

A tripped guard raises :class:`GuardViolation` (an ``AssertionError``
subclass: these are internal-consistency failures, not user errors).
"""

from __future__ import annotations

import numpy as np

from repro.core.buckets import NO_BUCKET, bucket_members, next_bucket
from repro.core.distances import INF

__all__ = ["GuardViolation", "InvariantGuards"]


class GuardViolation(AssertionError):
    """A runtime invariant of the solve was violated."""


class InvariantGuards:
    """Per-solve monitor state for the invariants above.

    One instance lives on the :class:`~repro.core.context.ExecutionContext`
    for the duration of a solve. All checks are vectorised full-array
    comparisons — O(n) per superstep, fine at paranoid-debugging scale.
    """

    def __init__(self, num_vertices: int, delta: int) -> None:
        self.num_vertices = num_vertices
        self.delta = delta
        self._last_bucket: int | None = None
        self._d_prev: np.ndarray | None = None
        self._settled_prev: np.ndarray | None = None
        self._d_at_settle: np.ndarray | None = None
        self.checks = 0
        self.violations = 0

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations += 1
        raise GuardViolation(message)

    # -- bucket monotonicity -------------------------------------------
    def on_bucket_start(self, k: int) -> None:
        """The bucket loop is about to process bucket index ``k``."""
        self.checks += 1
        if self._last_bucket is not None and k <= self._last_bucket:
            self._fail(
                f"bucket monotonicity violated: processing bucket {k} after "
                f"bucket {self._last_bucket} (indices must strictly increase)"
            )
        self._last_bucket = k

    # -- distance monotonicity -----------------------------------------
    def after_relaxations(self, d: np.ndarray) -> None:
        """A relaxation step finished; ``d`` is the new global array."""
        self.checks += 1
        if self._d_prev is not None:
            raised = d > self._d_prev
            if raised.any():
                v = int(np.flatnonzero(raised)[0])
                self._fail(
                    f"distance monotonicity violated: d[{v}] rose from "
                    f"{int(self._d_prev[v])} to {int(d[v])} — relaxation "
                    "must only ever lower tentative distances"
                )
        self._d_prev = d.copy()

    def on_rollback(self) -> None:
        """A legitimate state rollback happened (rank restart from a
        recovery checkpoint); distances may lawfully rise once. Clears the
        monotonicity and finality baselines so the next superstep
        re-snapshots from the restored state."""
        self._d_prev = None
        self._settled_prev = None
        self._d_at_settle = None

    # -- settled finality ----------------------------------------------
    def check_settled(self, d: np.ndarray, settled: np.ndarray) -> None:
        """The settle step finished for this epoch."""
        self.checks += 1
        if self._settled_prev is not None:
            unsettled = self._settled_prev & ~settled
            if unsettled.any():
                v = int(np.flatnonzero(unsettled)[0])
                self._fail(
                    f"settled finality violated: vertex {v} was settled and "
                    "became unsettled again"
                )
            changed = self._settled_prev & (d != self._d_at_settle)
            if changed.any():
                v = int(np.flatnonzero(changed)[0])
                self._fail(
                    f"settled finality violated: settled vertex {v} changed "
                    f"distance {int(self._d_at_settle[v])} -> {int(d[v])}"
                )
        self._settled_prev = settled.copy()
        self._d_at_settle = d.copy()

    # -- IOS edge conservation -----------------------------------------
    def check_ios_partition(
        self,
        proposed: np.ndarray,
        hi: int,
        inner_mask: np.ndarray,
    ) -> None:
        """An IOS short phase split ``proposed`` distances at boundary
        ``hi`` into inner (``inner_mask``) and outer (``~inner_mask``)."""
        self.checks += 1
        bad_inner = inner_mask & (proposed >= hi)
        if bad_inner.any():
            i = int(np.flatnonzero(bad_inner)[0])
            self._fail(
                f"IOS partition violated: proposal {int(proposed[i])} "
                f">= boundary {hi} classified as inner"
            )
        bad_outer = ~inner_mask & (proposed < hi)
        if bad_outer.any():
            i = int(np.flatnonzero(bad_outer)[0])
            self._fail(
                f"IOS partition violated: proposal {int(proposed[i])} "
                f"< boundary {hi} classified as outer"
            )

    def check_ios_coverage(self, num_short_arcs: int, num_proposals: int) -> None:
        """Every scanned short arc must yield exactly one proposal before
        the inner/outer split — none dropped, none duplicated."""
        self.checks += 1
        if num_proposals != num_short_arcs:
            self._fail(
                f"IOS edge conservation violated: {num_short_arcs} short arcs "
                f"scanned but {num_proposals} proposals produced"
            )

    # -- bucket-index equivalence --------------------------------------
    def check_bucket_index(
        self, index, d: np.ndarray, settled: np.ndarray
    ) -> None:
        """Cross-check an incremental bucket index against the scans.

        ``index`` is a :class:`~repro.core.bucket_index.BucketIndex` over
        (a slice of) ``d``/``settled``. Verifies the three contracts the
        engines rely on: the per-vertex bucket assignment equals the
        from-scratch formula, :meth:`min_bucket` equals ``next_bucket``,
        and the minimum bucket's membership equals ``bucket_members``.
        """
        self.checks += 1
        delta = index.delta
        expected = np.where(
            (d < INF) & ~settled, d // delta, np.int64(NO_BUCKET)
        )
        actual = index.bucket_of_view()
        if not np.array_equal(actual, expected):
            v = int(np.flatnonzero(actual != expected)[0])
            self._fail(
                "bucket-index equivalence violated: index places vertex "
                f"{v} in bucket {int(actual[v])} but the scan computes "
                f"{int(expected[v])}"
            )
        k_scan = next_bucket(d, settled, delta)
        k_index = index.min_bucket()
        if k_index != k_scan:
            self._fail(
                "bucket-index equivalence violated: min_bucket() returned "
                f"{k_index} but next_bucket computes {k_scan}"
            )
        if k_scan != NO_BUCKET and not np.array_equal(
            index.members(k_scan), bucket_members(d, settled, k_scan, delta)
        ):
            self._fail(
                "bucket-index equivalence violated: members of bucket "
                f"{k_scan} differ from the from-scratch scan"
            )

    # -- recovery traffic separation -----------------------------------
    def check_recovery_separation(self, metrics, *, allowed: bool) -> None:
        """At solve end: recovery-phase accounting must be zero unless the
        solve actually injected faults or degraded to a recovery pass."""
        self.checks += 1
        if allowed:
            return
        rec_bytes = metrics.recovery_bytes
        rec = metrics.recovery
        if rec_bytes or metrics.recovery_phases or rec.recovery_supersteps:
            self._fail(
                "recovery-traffic separation violated: fault-free solve "
                f"charged recovery_bytes={rec_bytes}, "
                f"recovery_phases={metrics.recovery_phases}, "
                f"recovery_supersteps={rec.recovery_supersteps}"
            )

    # -- final sanity ---------------------------------------------------
    def check_final(self, d: np.ndarray, root: int) -> None:
        """Cheap end-of-solve sanity: root at zero, no negative or
        overflowing distances."""
        self.checks += 1
        if int(d[root]) != 0:
            self._fail(f"final distances corrupt: d[root]={int(d[root])} != 0")
        finite = d[d < INF]
        if finite.size and int(finite.min()) < 0:
            self._fail("final distances corrupt: negative distance present")
