"""Unit tests for the execution-trace timeline."""

import pytest

from repro.analysis.trace import render_timeline, time_by_phase_kind, timeline
from repro.core.solver import solve_sssp
from repro.runtime.costmodel import evaluate_cost
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics


@pytest.fixture(scope="module")
def run(rmat1_small):
    machine = MachineConfig(num_ranks=4, threads_per_rank=4)
    res = solve_sssp(rmat1_small, 3, algorithm="opt", delta=25, machine=machine)
    return res, machine


class TestTimeline:
    def test_one_row_per_record(self, run):
        res, machine = run
        rows = timeline(res.metrics, machine)
        assert len(rows) == len(res.metrics.records)

    def test_cumulative_time_matches_cost_model(self, run):
        res, machine = run
        rows = timeline(res.metrics, machine)
        total = evaluate_cost(res.metrics, machine).total_time
        assert rows[-1]["t_s"] == pytest.approx(total)

    def test_costs_nonnegative_and_monotone(self, run):
        res, machine = run
        rows = timeline(res.metrics, machine)
        assert all(r["cost_s"] >= 0 for r in rows)
        ts = [r["t_s"] for r in rows]
        assert all(b >= a for a, b in zip(ts, ts[1:]))

    def test_empty_metrics(self):
        machine = MachineConfig(num_ranks=1, threads_per_rank=1)
        assert timeline(Metrics(num_ranks=1, threads_per_rank=1), machine) == []


class TestAggregation:
    def test_phase_kinds_partition_total(self, run):
        res, machine = run
        by_kind = time_by_phase_kind(res.metrics, machine)
        total = evaluate_cost(res.metrics, machine).total_time
        assert sum(by_kind.values()) == pytest.approx(total)

    def test_bucket_share_matches_cost_breakdown(self, run):
        res, machine = run
        by_kind = time_by_phase_kind(res.metrics, machine)
        cost = evaluate_cost(res.metrics, machine)
        assert by_kind.get("bucket", 0.0) == pytest.approx(cost.bucket_time)


class TestRendering:
    def test_render_contains_total_and_rows(self, run):
        res, machine = run
        text = render_timeline(res.metrics, machine, top=5)
        lines = text.splitlines()
        assert "total simulated time" in lines[0]
        # title + header + separator + 5 data rows
        assert len(lines) == 8

    def test_render_empty(self):
        machine = MachineConfig(num_ranks=1, threads_per_rank=1)
        text = render_timeline(Metrics(num_ranks=1, threads_per_rank=1), machine)
        assert "0 records" in text


class TestPriceRecordConsistency:
    """timeline() and the cost model share price_record — the cumulative
    timeline must land exactly on the cost model's total for every preset."""

    @pytest.mark.parametrize(
        "algorithm", ["dijkstra", "bellman-ford", "delta", "prune", "opt",
                      "lb-opt"]
    )
    def test_timeline_total_matches_cost_model(self, rmat1_small, algorithm):
        machine = MachineConfig(num_ranks=4, threads_per_rank=4)
        res = solve_sssp(
            rmat1_small, 3, algorithm=algorithm, delta=25, machine=machine
        )
        rows = timeline(res.metrics, machine)
        total = evaluate_cost(res.metrics, machine).total_time
        assert rows[-1]["t_s"] == pytest.approx(total, rel=1e-12)
