"""The Δ-stepping engine (Section II-A, Fig. 2) with the paper's optimisations.

One engine executes the whole algorithm family; the
:class:`~repro.core.config.SolverConfig` flags select the variant:

- plain Δ-stepping with short/long edge classification (``Del-Δ``);
- inner/outer-short refinement (``use_ios``);
- pruning push/pull long phases with the decision heuristic
  (``use_pruning``);
- hybridization into Bellman-Ford (``use_hybrid``);
- Δ = 1 reproduces Dial/Dijkstra, Δ = ∞ reproduces Bellman-Ford.

Execution is bulk-synchronous. Every epoch (bucket) runs a first stage of
iterative *short phases* (relaxing short — under IOS only inner short —
arcs of active vertices) until the bucket drains, settles the bucket
members, then one *long phase* relaxes the remaining arcs by push or pull.
All communication and per-thread compute is declared to the accounting
runtime, which is what the cost model and the paper-figure benches consume.
"""

from __future__ import annotations

import numpy as np

from repro.core.bellman_ford import bellman_ford_stage
from repro.core.buckets import NO_BUCKET, bucket_members, next_bucket
from repro.core.context import ExecutionContext
from repro.core.distances import INF, init_distances
from repro.core.hybrid import should_switch
from repro.core.pruning import bucket_census, long_phase_pull, long_phase_push
from repro.core.pushpull import decide_mode
from repro.core.relax import apply_relaxations
from repro.runtime.comm import RELAX_RECORD_BYTES
from repro.runtime.metrics import ComputeKind
from repro.util.ranges import concat_ranges

__all__ = ["DeltaSteppingEngine", "run_delta_stepping"]


class DeltaSteppingEngine:
    """Executes one SSSP run over an :class:`ExecutionContext`."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    def run(self, root: int) -> np.ndarray:
        """Solve SSSP from ``root``; returns the distance array."""
        ctx = self.ctx
        cfg = ctx.config
        n = ctx.graph.num_vertices
        d = init_distances(n, root)
        if cfg.is_bellman_ford:
            bellman_ford_stage(ctx, d, np.array([root], dtype=np.int64))
            return d
        settled = np.zeros(n, dtype=bool)
        bucket_ordinal = 0
        while True:
            # Next non-empty bucket: every rank scans its unsettled vertices
            # for the minimum tentative distance, then one allreduce.
            ctx.scan_all_ranks(int((~settled).sum()))
            ctx.comm.allreduce(1, phase_kind="bucket")
            k = next_bucket(d, settled, cfg.delta)
            if k == NO_BUCKET:
                break
            self._process_epoch(d, settled, k, bucket_ordinal)
            bucket_ordinal += 1
            if cfg.use_hybrid:
                # Settled-fraction aggregate for the switch decision.
                ctx.comm.allreduce(1, phase_kind="bucket")
                if should_switch(settled, cfg.tau):
                    ctx.metrics.hybrid_switch_bucket = k
                    remaining = np.nonzero(~settled & (d < INF))[0].astype(np.int64)
                    bellman_ford_stage(ctx, d, remaining)
                    settled |= d < INF
                    break
        return d

    # ------------------------------------------------------------------
    def _short_phase(self, d: np.ndarray, active: np.ndarray, k: int) -> np.ndarray:
        """One short-edge phase over ``active``; returns changed vertices."""
        ctx = self.ctx
        graph = ctx.graph
        delta = ctx.config.delta
        hi = (k + 1) * delta
        indptr, adj, weights = graph.indptr, graph.adj, graph.weights
        starts = indptr[active]
        ends = starts + ctx.short_offsets[active]
        arcs, owner_idx = concat_ranges(starts, ends)
        src = active[owner_idx]
        dst = adj[arcs]
        nd = d[src] + weights[arcs]
        scanned = (ends - starts).astype(np.float64)
        if ctx.config.use_ios:
            # Inner-short filter: relax only when the proposed distance lands
            # inside the current bucket; outer short arcs wait for the long
            # phase.
            inner = nd < hi
            src, dst, nd = src[inner], dst[inner], nd[inner]
        ctx.charge(ComputeKind.SHORT_RELAX, active, scanned, phase_kind="short")
        ctx.comm.exchange_by_vertex(src, dst, RELAX_RECORD_BYTES, phase_kind="short")
        ctx.charge(
            ComputeKind.SHORT_RELAX, dst, None, phase_kind="short", count_as_relax=True
        )
        ctx.metrics.note_phase("short", dst.size)
        return apply_relaxations(d, dst, nd)

    # ------------------------------------------------------------------
    def _process_epoch(
        self, d: np.ndarray, settled: np.ndarray, k: int, bucket_ordinal: int
    ) -> None:
        """Process bucket ``k`` to completion: short stage, settle, long phase."""
        ctx = self.ctx
        cfg = ctx.config
        delta = cfg.delta
        lo = k * delta
        hi = lo + delta

        # Epoch start: identify the bucket members (scan of unsettled set).
        ctx.scan_all_ranks(int((~settled).sum()))
        active = bucket_members(d, settled, k, delta)

        # --- Stage 1: iterative short phases until the bucket drains.
        while True:
            ctx.comm.allreduce(1, phase_kind="bucket")
            if active.size == 0:
                break
            per_rank = np.bincount(
                np.asarray(ctx.partition.owner(active), dtype=np.int64),
                minlength=ctx.machine.num_ranks,
            )
            ctx.charge_scan(per_rank)
            changed = self._short_phase(d, active, k)
            if changed.size:
                in_bucket = (d[changed] >= lo) & (d[changed] < hi)
                active = changed[in_bucket]
            else:
                active = changed

        # --- Settle the bucket.
        members = bucket_members(d, settled, k, delta)
        settled[members] = True

        stats: dict[str, int | str] = {}
        if cfg.collect_census:
            stats.update(bucket_census(ctx, d, settled, members, k))

        # --- Stage 2: one long phase, push or pull.
        mode, estimate = decide_mode(ctx, d, settled, members, k, bucket_ordinal)
        if mode == "push":
            _, phase_stats = long_phase_push(ctx, d, members, k)
        else:
            _, phase_stats = long_phase_pull(ctx, d, settled, members, k)
        stats.update(phase_stats)
        stats["bucket"] = k
        stats["members"] = int(members.size)
        if estimate is not None:
            stats["est_push_cost"] = estimate.push_cost
            stats["est_pull_cost"] = estimate.pull_cost
        ctx.metrics.note_bucket(stats)


def run_delta_stepping(ctx: ExecutionContext, root: int) -> np.ndarray:
    """Convenience wrapper: build the engine and solve from ``root``."""
    return DeltaSteppingEngine(ctx).run(root)
