"""Unit tests for the analysis drivers (oracle, phase stats, sweeps)."""

import numpy as np
import pytest

from repro.analysis.oracle import evaluate_decision_sequences
from repro.analysis.phase_stats import (
    algorithm_comparison,
    bucket_census_table,
    phase_relaxation_series,
)
from repro.analysis.sweep import delta_sweep, weak_scaling
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, RMAT2


class TestPhaseStats:
    def test_phase_series_matches_metrics(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, algorithm="delta", delta=25,
                         num_ranks=2, threads_per_rank=2)
        series = phase_relaxation_series(res.metrics)
        assert len(series) == res.metrics.total_phases
        assert sum(r["relaxations"] for r in series) == res.metrics.total_relaxations
        assert {r["kind"] for r in series} <= {"short", "long", "bf"}

    def test_long_phases_dominate_relaxations(self, rmat1_small):
        # Fig. 4: long phases carry most of the work for delta << w_max.
        res = solve_sssp(rmat1_small, 3, algorithm="delta", delta=25,
                         num_ranks=2, threads_per_rank=2)
        series = phase_relaxation_series(res.metrics)
        long_work = sum(r["relaxations"] for r in series if r["kind"] == "long")
        short_work = sum(r["relaxations"] for r in series if r["kind"] == "short")
        assert long_work > short_work

    def test_census_table(self, rmat1_small):
        cfg = SolverConfig(delta=25, use_pruning=True, collect_census=True)
        res = solve_sssp(rmat1_small, 3, algorithm="census", config=cfg,
                         num_ranks=2, threads_per_rank=2)
        table = bucket_census_table(res.metrics)
        assert table
        assert {"self_edges", "backward_edges", "forward_edges"} <= set(table[0])

    def test_algorithm_comparison_rows(self, rmat1_small):
        rows = algorithm_comparison(
            rmat1_small, 3,
            [("Del-25", "delta", 25), ("OPT-25", "opt", 25)],
            num_ranks=2, threads_per_rank=2,
        )
        assert [r["algorithm"] for r in rows] == ["Del-25", "OPT-25"]
        assert all(r["relaxations"] > 0 for r in rows)


class TestDeltaSweep:
    def test_rows_per_delta(self, rmat1_small):
        rows = delta_sweep(rmat1_small, 3, [1, 25, 100],
                           num_ranks=2, threads_per_rank=2)
        assert [r["delta"] for r in rows] == [1, 25, 100]

    def test_mid_delta_beats_dijkstra(self, rmat1_small):
        rows = delta_sweep(rmat1_small, 3, [1, 25],
                           num_ranks=2, threads_per_rank=2)
        assert rows[1]["gteps"] > rows[0]["gteps"]

    def test_overrides_applied(self, rmat1_small):
        rows = delta_sweep(rmat1_small, 3, [25], algorithm="opt",
                           num_ranks=2, threads_per_rank=2,
                           config_overrides={"tau": 0.0})
        assert rows[0]["buckets"] == 1


class TestWeakScaling:
    def test_rows_shape(self):
        rows = weak_scaling([1, 2], RMAT1, vertices_per_rank_log2=8,
                            algorithms=[("A", "delta", 25), ("B", "opt", 25)],
                            threads_per_rank=2)
        assert len(rows) == 4
        assert rows[0]["scale"] == 8 and rows[2]["scale"] == 9

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            weak_scaling([3], RMAT1, vertices_per_rank_log2=8)

    def test_runs_have_work(self):
        rows = weak_scaling([1, 2, 4], RMAT2, vertices_per_rank_log2=8,
                            threads_per_rank=2)
        assert all(r["relaxations"] > 0 for r in rows)

    def test_machine_factory_respected(self):
        from repro.runtime.machine import MachineConfig

        seen = []

        def factory(nodes):
            seen.append(nodes)
            return MachineConfig(num_ranks=nodes, threads_per_rank=1)

        weak_scaling([1, 2], RMAT1, vertices_per_rank_log2=7,
                     machine_factory=factory)
        assert seen == [1, 2]


class TestOracle:
    def test_exact_estimator_is_optimal(self, rmat1_small):
        from repro.graph.roots import choose_root

        root = choose_root(rmat1_small, seed=1)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, pushpull_estimator="exact")
        rep = evaluate_decision_sequences(
            rmat1_small, root, config=cfg, num_ranks=2, threads_per_rank=2
        )
        assert rep.heuristic_is_optimal
        assert rep.slowdown_vs_best == pytest.approx(1.0)
        assert len(rep.all_times) == 2**rep.num_buckets

    def test_expectation_estimator_near_optimal(self, rmat1_small):
        from repro.graph.roots import choose_root

        root = choose_root(rmat1_small, seed=2)
        rep = evaluate_decision_sequences(
            rmat1_small, root, delta=25, num_ranks=2, threads_per_rank=2
        )
        assert rep.slowdown_vs_best < 1.25

    def test_decision_overhead_nonnegative(self, rmat1_small):
        rep = evaluate_decision_sequences(
            rmat1_small, 3, delta=25, num_ranks=2, threads_per_rank=2
        )
        assert rep.decision_overhead >= 0

    def test_requires_pruning(self, rmat1_small):
        with pytest.raises(ValueError, match="use_pruning"):
            evaluate_decision_sequences(
                rmat1_small, 3, config=SolverConfig(delta=25), num_ranks=2
            )

    def test_best_no_worse_than_worst(self, rmat1_small):
        rep = evaluate_decision_sequences(
            rmat1_small, 3, delta=25, num_ranks=2, threads_per_rank=2
        )
        assert rep.best_time <= rep.worst_time
