"""Unit tests for per-vertex weight histograms and the histogram estimator."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.context import make_context
from repro.core.histograms import build_weight_histogram
from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.runtime.machine import MachineConfig


class TestBuildWeightHistogram:
    def test_last_column_equals_degree(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small, num_bins=8)
        assert np.array_equal(hist.cumulative[:, -1], rmat1_small.degrees)

    def test_cumulative_monotone(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small, num_bins=8)
        assert np.all(np.diff(hist.cumulative, axis=1) >= 0)

    def test_bin_edges_count_exactly(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small, num_bins=8)
        g = rmat1_small
        # at a bin edge the histogram count is exact
        for u in range(0, g.num_vertices, 97):
            for k in (1, 3, 8):
                threshold = k * hist.bin_width
                exact = int((g.neighbor_weights(u) < threshold).sum())
                est = hist.count_below(
                    np.array([u]), np.array([float(threshold)])
                )[0]
                assert est == pytest.approx(exact)

    def test_interpolation_bounded_by_neighbors(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small, num_bins=4)
        u = int(np.argmax(rmat1_small.degrees))
        mid = 1.5 * hist.bin_width
        est = hist.count_below(np.array([u]), np.array([mid]))[0]
        lo = hist.cumulative[u, 1]
        hi = hist.cumulative[u, 2]
        assert lo <= est <= hi

    def test_thresholds_clipped(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small, num_bins=4)
        u = 0
        big = hist.count_below(np.array([u]), np.array([1e9]))[0]
        assert big == rmat1_small.degree(0)
        neg = hist.count_below(np.array([u]), np.array([-5.0]))[0]
        assert neg == 0

    def test_shape_mismatch(self, rmat1_small):
        hist = build_weight_histogram(rmat1_small)
        with pytest.raises(ValueError):
            hist.count_below(np.array([0, 1]), np.array([1.0]))

    def test_invalid_bins(self, rmat1_small):
        with pytest.raises(ValueError):
            build_weight_histogram(rmat1_small, num_bins=0)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(np.array([0, 0]), np.array([]), np.array([]))
        hist = build_weight_histogram(g, num_bins=4)
        assert hist.cumulative.shape == (1, 5)


class TestHistogramEstimator:
    def test_distances_still_exact(self, rmat2_small):
        cfg = SolverConfig(
            delta=25, use_ios=True, use_pruning=True, use_hybrid=True,
            pushpull_estimator="histogram",
        )
        res = solve_sssp(rmat2_small, 11, algorithm="hist", config=cfg,
                         num_ranks=4, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(rmat2_small, 11))

    def test_histogram_built_only_when_needed(self, rmat1_small):
        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        ctx = make_context(
            rmat1_small, machine, SolverConfig(delta=25, use_pruning=True)
        )
        assert ctx.weight_histogram is None
        ctx = make_context(
            rmat1_small, machine,
            SolverConfig(delta=25, use_pruning=True,
                         pushpull_estimator="histogram"),
        )
        assert ctx.weight_histogram is not None

    def test_estimator_requires_histogram(self, rmat1_small):
        from repro.core.pushpull import estimate_models_histogram

        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        ctx = make_context(rmat1_small, machine, SolverConfig(delta=25))
        d = dijkstra_reference(rmat1_small, 3)
        with pytest.raises(ValueError, match="histogram"):
            estimate_models_histogram(
                ctx, d, d < 25, np.array([], dtype=np.int64), 0
            )

    def test_histogram_close_to_exact_request_count(self, rmat1_small):
        """With enough bins the histogram estimate approaches the truth."""
        from repro.core.pruning import gather_pull_requests, later_vertices
        from repro.core.pushpull import estimate_models_histogram

        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           pushpull_estimator="histogram", histogram_bins=64)
        ctx = make_context(rmat1_small, machine, cfg)
        d = dijkstra_reference(rmat1_small, 3).copy()
        settled = d < 50  # pretend buckets 0-1 settled, k = 1
        members = np.nonzero((d >= 25) & (d < 50))[0]
        est = estimate_models_histogram(ctx, d, settled, members, 1)
        later = later_vertices(ctx, d, settled, 1)
        req_v, _, _, _ = gather_pull_requests(ctx, d, later, 1)
        exact = req_v.size
        assert est.pull_requests == pytest.approx(exact, rel=0.15)
