"""Trace exporters: JSONL event log, Chrome/Perfetto JSON, Prometheus text.

Three on-disk artifacts, all derived from one :class:`~repro.obs.tracer.Tracer`:

- **JSONL** (:func:`write_jsonl`) — one JSON object per line: a ``meta``
  header, then every span/instant/record event in emission order, then a
  ``summary`` trailer. Lossless; ``python -m repro trace-report`` renders it.
- **Perfetto** (:func:`write_perfetto`) — Chrome ``trace_events`` JSON
  loadable in ``ui.perfetto.dev`` or ``chrome://tracing``. Three process
  tracks: the measured wall-clock timeline, the cost-model timeline (the
  same spans at simulated timestamps) and one thread per simulated rank
  carrying per-record per-rank slices — real and simulated time render
  side by side.
- **Prometheus** (:func:`write_prometheus`) — the registry's text
  exposition, scrapable as a node-exporter-style file.

The ``validate_*`` functions are the schema checks CI's ``obs-smoke`` job
runs over the produced artifacts (via ``trace-report --validate``).
:func:`finalize_trace` is the one entry point the solver front-ends call:
it seals the tracer and writes whatever the :class:`TraceConfig` asks for.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import Tracer

__all__ = [
    "write_jsonl",
    "perfetto_trace",
    "write_perfetto",
    "write_prometheus",
    "validate_jsonl",
    "validate_perfetto",
    "validate_trace_file",
    "finalize_trace",
]

JSONL_SCHEMA = 1
"""Version stamp of the JSONL event-log schema."""

_EVENT_TYPES = ("meta", "span", "instant", "record", "summary")

# Perfetto process ids (one "process" per timeline).
_PID_WALL = 0
_PID_COST = 1
_PID_RANKS = 2


def _meta_header(tracer: Tracer) -> dict[str, Any]:
    m = tracer.machine
    return {
        "type": "meta",
        "schema": JSONL_SCHEMA,
        "num_ranks": m.num_ranks,
        "threads_per_rank": m.threads_per_rank,
        "wall_total": tracer.wall_total,
        "sim_total": tracer.sim_t,
    }


def _summary_trailer(tracer: Tracer) -> dict[str, Any]:
    return {
        "type": "summary",
        "wall_total": tracer.wall_total,
        "sim_total": tracer.sim_t,
        "summary": tracer.summary,
        "drift": tracer.drift_rows,
    }


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Write the full event stream as newline-delimited JSON."""
    with open(path, "w") as fh:
        fh.write(json.dumps(_meta_header(tracer)) + "\n")
        for ev in tracer.events:
            fh.write(json.dumps(ev) + "\n")
        fh.write(json.dumps(_summary_trailer(tracer)) + "\n")


def perfetto_trace(tracer: Tracer) -> dict[str, Any]:
    """Build the Chrome ``trace_events`` JSON object (see module docstring).

    Timestamps and durations are microseconds as the format requires;
    ``otherData`` carries the run summary and drift report so a Perfetto
    file remains renderable by ``trace-report``.
    """
    us = 1e6
    events: list[dict[str, Any]] = []

    def meta(pid: int, name: str, tid: int | None = None) -> None:
        ev: dict[str, Any] = {
            "ph": "M",
            "pid": pid,
            "tid": 0 if tid is None else tid,
            "name": "process_name" if tid is None else "thread_name",
            "args": {"name": name},
        }
        events.append(ev)

    meta(_PID_WALL, "wall clock (measured)")
    meta(_PID_COST, "cost model (simulated)")
    meta(_PID_RANKS, "simulated ranks")
    num_ranks = tracer.machine.num_ranks
    for r in range(num_ranks):
        meta(_PID_RANKS, f"rank {r}", tid=r)

    for ev in tracer.events:
        if ev["type"] == "span":
            dur = ev["dur"] if ev["dur"] is not None else 0.0
            sim_dur = ev["sim_dur"] if ev["sim_dur"] is not None else 0.0
            args = {"sim_dur_s": sim_dur, **ev["args"]}
            events.append(
                {
                    "name": ev["name"],
                    "cat": ev["cat"],
                    "ph": "X",
                    "pid": _PID_WALL,
                    "tid": 0,
                    "ts": ev["ts"] * us,
                    "dur": dur * us,
                    "args": args,
                }
            )
            events.append(
                {
                    "name": ev["name"],
                    "cat": ev["cat"],
                    "ph": "X",
                    "pid": _PID_COST,
                    "tid": 0,
                    "ts": ev["sim_ts"] * us,
                    "dur": sim_dur * us,
                    "args": {"wall_dur_s": dur, **ev["args"]},
                }
            )
        elif ev["type"] == "instant":
            events.append(
                {
                    "name": ev["name"],
                    "cat": "instant",
                    "ph": "i",
                    "s": "p",
                    "pid": _PID_WALL,
                    "tid": 0,
                    "ts": ev["ts"] * us,
                    "args": ev["args"],
                }
            )
        elif ev["type"] == "record":
            for r, sim in enumerate(ev["rank_sim"]):
                if sim <= 0.0:
                    continue
                events.append(
                    {
                        "name": ev["kind"],
                        "cat": ev["phase"],
                        "ph": "X",
                        "pid": _PID_RANKS,
                        "tid": r,
                        "ts": ev["sim_ts"] * us,
                        "dur": sim * us,
                        "args": {"step": ev["step"], "phase": ev["phase"]},
                    }
                )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": JSONL_SCHEMA,
            "num_ranks": num_ranks,
            "threads_per_rank": tracer.machine.threads_per_rank,
            "wall_total": tracer.wall_total,
            "sim_total": tracer.sim_t,
            "summary": tracer.summary,
            "drift": tracer.drift_rows,
        },
    }


def write_perfetto(tracer: Tracer, path: str) -> None:
    """Write the Chrome/Perfetto ``trace_events`` JSON file."""
    with open(path, "w") as fh:
        json.dump(perfetto_trace(tracer), fh)


def write_prometheus(tracer: Tracer, path: str) -> None:
    """Write the registry's Prometheus text exposition."""
    with open(path, "w") as fh:
        fh.write(tracer.registry.prometheus_text())


# ----------------------------------------------------------------------
# Validation (used by ``trace-report --validate`` and CI's obs-smoke job)
# ----------------------------------------------------------------------
def validate_jsonl(lines: list[dict[str, Any]]) -> list[str]:
    """Schema-check parsed JSONL events; returns a list of problems."""
    problems: list[str] = []
    if not lines:
        return ["empty trace"]
    if lines[0].get("type") != "meta":
        problems.append("first line is not a meta header")
    elif lines[0].get("schema") != JSONL_SCHEMA:
        problems.append(f"unknown schema {lines[0].get('schema')!r}")
    if lines[-1].get("type") != "summary":
        problems.append("last line is not a summary trailer")
    last_sim = -1.0
    for i, ev in enumerate(lines):
        typ = ev.get("type")
        if typ not in _EVENT_TYPES:
            problems.append(f"line {i}: unknown event type {typ!r}")
            continue
        if typ == "span":
            for field in ("name", "cat", "ts", "dur", "sim_ts", "sim_dur"):
                if ev.get(field) is None:
                    problems.append(f"line {i}: span missing {field!r}")
            if (ev.get("dur") or 0) < 0:
                problems.append(f"line {i}: negative span duration")
        elif typ == "record":
            for field in ("kind", "phase", "ts", "wall_dt", "sim_ts", "sim_dt"):
                if ev.get(field) is None:
                    problems.append(f"line {i}: record missing {field!r}")
            sim_ts = ev.get("sim_ts")
            if sim_ts is not None:
                if sim_ts < last_sim:
                    problems.append(
                        f"line {i}: simulated timestamps not monotone"
                    )
                last_sim = sim_ts
    return problems


def validate_perfetto(data: dict[str, Any]) -> list[str]:
    """Schema-check a ``trace_events`` JSON object; returns problems."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    processes: set[str] = set()
    rank_threads: set[int] = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "M", "i"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in ev:
                problems.append(f"event {i}: missing {field!r}")
        if ph == "X":
            for field in ("ts", "dur"):
                if not isinstance(ev.get(field), (int, float)):
                    problems.append(f"event {i}: X event missing {field!r}")
                elif field == "dur" and ev[field] < 0:
                    problems.append(f"event {i}: negative duration")
        elif ph == "i":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"event {i}: instant missing ts")
        elif ph == "M":
            name = (ev.get("args") or {}).get("name")
            if ev.get("name") == "process_name":
                processes.add(name)
            elif ev.get("name") == "thread_name" and ev.get("pid") == _PID_RANKS:
                rank_threads.add(ev.get("tid"))
    for expected in (
        "wall clock (measured)",
        "cost model (simulated)",
        "simulated ranks",
    ):
        if expected not in processes:
            problems.append(f"missing process track {expected!r}")
    other = data.get("otherData") or {}
    num_ranks = other.get("num_ranks")
    if num_ranks is not None and len(rank_threads) != num_ranks:
        problems.append(
            f"expected {num_ranks} rank threads, found {len(rank_threads)}"
        )
    return problems


def validate_trace_file(path: str) -> tuple[str, list[str]]:
    """Detect a trace file's format and schema-check it.

    Returns ``(format, problems)`` where format is ``"jsonl"`` or
    ``"perfetto"``; an unparsable file reports format ``"unknown"``.
    """
    from repro.obs.report import load_trace

    try:
        trace = load_trace(path)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        return "unknown", [f"cannot load trace: {exc}"]
    if trace.format == "perfetto":
        return "perfetto", validate_perfetto(trace.raw)
    return "jsonl", validate_jsonl(trace.lines)


# ----------------------------------------------------------------------
def finalize_trace(tracer: Tracer, metrics=None) -> dict[str, str]:
    """Seal the tracer and write the artifacts its config asks for.

    Called by the solver front-ends after the engine returns. Idempotent:
    a tracer that was already finalized keeps its recorded artifacts.
    Returns ``{"trace": path, "metrics": path}`` (keys only for artifacts
    actually written); the same mapping is stored as ``tracer.artifacts``.
    """
    already = tracer.finished
    tracer.finish(metrics=metrics)
    if already and tracer.artifacts:
        return tracer.artifacts
    cfg = tracer.config
    artifacts: dict[str, str] = {}
    if cfg.path is not None:
        if cfg.format == "perfetto":
            write_perfetto(tracer, cfg.path)
        else:
            write_jsonl(tracer, cfg.path)
        artifacts["trace"] = cfg.path
    if cfg.metrics_path is not None:
        write_prometheus(tracer, cfg.metrics_path)
        artifacts["metrics"] = cfg.metrics_path
    tracer.artifacts = artifacts
    return artifacts
