"""Graph substrate: CSR storage, generators, partitioning and statistics.

This subpackage provides everything the SSSP algorithms consume:

- :class:`repro.graph.csr.CSRGraph` — the in-memory compressed sparse row
  representation used by all kernels.
- :mod:`repro.graph.builder` — edge-list construction utilities
  (symmetrization, deduplication, weight attachment).
- :mod:`repro.graph.rmat` — the Graph 500 R-MAT generator with the paper's
  RMAT-1 (BFS benchmark) and RMAT-2 (proposed SSSP benchmark) parameter sets.
- :mod:`repro.graph.weights` — uniform integer edge weights in ``[1, w_max]``.
- :mod:`repro.graph.partition` — 1-D block partitioning / vertex ownership.
- :mod:`repro.graph.degree` — degree and skew statistics (paper Fig. 8).
- :mod:`repro.graph.social` — synthetic stand-ins for the paper's real-world
  social graphs (Friendster, Orkut, LiveJournal).
- :mod:`repro.graph.grid` — road-network-like graphs for the examples.
- :mod:`repro.graph.io` — simple persistence.
"""

from repro.graph.builder import from_edges, from_undirected_edges
from repro.graph.csr import CSRGraph
from repro.graph.degree import DegreeStats, degree_stats
from repro.graph.grid import grid_graph, random_geometric_graph
from repro.graph.partition import BlockPartition
from repro.graph.roots import choose_root, choose_roots
from repro.graph.rmat import (
    RMAT1,
    RMAT2,
    RMATParams,
    rmat_edges,
    rmat_graph,
)
from repro.graph.social import (
    SocialGraphSpec,
    SOCIAL_GRAPH_SPECS,
    synthetic_social_graph,
)
from repro.graph.weights import (
    bimodal_weights,
    constant_weights,
    exponential_weights,
    reweight,
    uniform_weights,
)

__all__ = [
    "CSRGraph",
    "BlockPartition",
    "DegreeStats",
    "RMAT1",
    "RMAT2",
    "RMATParams",
    "SOCIAL_GRAPH_SPECS",
    "SocialGraphSpec",
    "bimodal_weights",
    "constant_weights",
    "exponential_weights",
    "reweight",
    "choose_root",
    "choose_roots",
    "degree_stats",
    "from_edges",
    "from_undirected_edges",
    "grid_graph",
    "random_geometric_graph",
    "rmat_edges",
    "rmat_graph",
    "synthetic_social_graph",
    "uniform_weights",
]
