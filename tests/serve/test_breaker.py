"""Circuit breaker: per-class state machine, deterministic transitions."""

import pytest

from repro.serve.breaker import BreakerConfig, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("recovery_time_s", 1.0)
    return CircuitBreaker(BreakerConfig(**kwargs), clock=clock)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time_s": -1.0},
            {"half_open_probes": 0},
            {"degrade_supersteps": 0},
            {"classes": ()},
            {"classes": ("error", "bogus")},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestStateMachine:
    def test_opens_at_consecutive_threshold(self):
        clock = FakeClock()
        breaker = make(clock)
        assert breaker.acquire() == "primary"
        breaker.on_result("primary", "error")
        assert breaker.state_of("error") == "closed"
        breaker.on_result("primary", "error")
        assert breaker.state_of("error") == "open"
        assert breaker.degraded
        assert breaker.open_classes() == ("error",)

    def test_success_resets_consecutive_count(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("primary", "error")
        breaker.on_result("primary", None)  # success clears the streak
        breaker.on_result("primary", "error")
        assert breaker.state_of("error") == "closed"

    def test_classes_are_independent(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("primary", "timeout")
        breaker.on_result("primary", "timeout")
        assert breaker.state_of("timeout") == "open"
        assert breaker.state_of("error") == "closed"
        assert breaker.state_of("corrupt") == "closed"

    def test_open_turns_half_open_after_recovery(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("primary", "error")
        breaker.on_result("primary", "error")
        assert breaker.acquire() == "degraded"
        clock.advance(0.5)
        assert breaker.acquire() == "degraded"  # still inside recovery
        clock.advance(0.6)
        assert breaker.state_of("error") == "half_open"
        assert breaker.acquire() == "probe"

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("primary", "error")
        breaker.on_result("primary", "error")
        clock.advance(1.5)
        decision = breaker.acquire()
        assert decision == "probe"
        breaker.on_result(decision, None)
        assert breaker.state_of("error") == "closed"
        assert not breaker.degraded
        assert breaker.acquire() == "primary"

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("primary", "error")
        breaker.on_result("primary", "error")
        clock.advance(1.5)
        decision = breaker.acquire()
        assert decision == "probe"
        breaker.on_result(decision, "error")
        assert breaker.state_of("error") == "open"
        assert breaker.acquire() == "degraded"

    def test_probe_slots_are_bounded(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=1)
        breaker.on_result("primary", "error")
        breaker.on_result("primary", "error")
        clock.advance(1.5)
        assert breaker.acquire() == "probe"
        # the probe slot is taken; concurrent acquires degrade
        assert breaker.acquire() == "degraded"

    def test_degraded_results_do_not_feed_the_machine(self):
        clock = FakeClock()
        breaker = make(clock)
        breaker.on_result("degraded", "error")
        breaker.on_result("degraded", "error")
        assert breaker.state_of("error") == "closed"


class TestDeterminism:
    def drive(self):
        clock = FakeClock()
        breaker = make(clock)
        script = [
            ("error",), ("error",), (None,),  # open "error"
        ]
        for (outcome,) in script:
            decision = breaker.acquire()
            breaker.on_result(decision, outcome)
            clock.advance(0.4)
        clock.advance(1.0)
        decision = breaker.acquire()
        breaker.on_result(decision, None)
        return breaker.transitions

    def test_replay_is_identical(self):
        assert self.drive() == self.drive()

    def test_transitions_record_timestamps_and_states(self):
        transitions = self.drive()
        assert [(cls, a, b) for _, cls, a, b in transitions] == [
            ("error", "closed", "open"),
            ("error", "open", "half_open"),
            ("error", "half_open", "closed"),
        ]


class TestMetrics:
    def test_state_gauge_and_transition_counter(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1), clock=clock, registry=registry
        )
        breaker.on_result("primary", "timeout")
        text = registry.prometheus_text()
        assert "serve_breaker_state" in text
        assert "serve_breaker_transitions_total" in text
